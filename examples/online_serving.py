"""Online serving walk-through: deployment pipeline, A/B test and case study.

Mirrors Sec. V-F of the paper (Fig. 9 / Fig. 10 / Fig. 11):

1. train GARCIA and the deployed baseline (KGAT) offline,
2. export embeddings into the serving pipeline (retrieval + ranking),
3. replay a week of simulated user traffic through both buckets and report
   the relative CTR / Valid-CTR improvement per day,
4. print the case-study ranked lists (with MAU and rating) for two
   representative long-tail queries,
5. redeploy GARCIA behind the high-throughput gateway (ANN retrieval,
   micro-batching, result cache) and report QPS / latency / recall under a
   Zipf request load — the latency story behind the paper's inner-product
   deployment choice (Sec. V-F.1),
6. publish *quantized* snapshots (int8 + product-quantized service tables)
   and serve the same load through the IVF-PQ index, reporting the
   memory-vs-recall trade-off that lets one shard hold a far larger
   catalogue under the same daily-refresh contract,
7. scale out: deploy the same model across 4 shard workers behind the
   scatter/gather gateway (``repro.serving.sharded``) — per-shard top-K
   lists merge exactly, per-shard telemetry shows the near-uniform load,
   and a daily refresh hot-swaps every worker through the two-phase flip,
8. go asyncio-native: serve an *open-loop* Poisson arrival stream through
   ``await gateway.search_async(...)`` — thousands of requests can be in
   flight as futures on one event loop (no thread per wait), with a bounded
   admission queue, per-request deadlines and the new queue-depth /
   overload / deadline-miss telemetry,
9. close the loop: rerun the Fig. 10 bucket test *through the gateway*
   (``repro.serving.abtest``) — sessions hash deterministically into a
   90/10 control/treatment split, each bucket is served by its own gateway
   arm (baseline exact scan vs GARCIA behind IVF), and one run reports the
   daily CTR / Valid-CTR improvement **and** each bucket's QPS / latency
   cost from the same tagged traffic,
10. watch it run: redeploy the sharded tier with end-to-end tracing on
    (``repro.serving.obs``), replay traffic, then ask the flight recorder
    to *explain* the slowest request — the span tree from admission
    through per-shard scatter to the reply — poll the one-allocation
    health snapshot, and scrape the same telemetry as a Prometheus text
    exposition,
11. replicate it: deploy a 3-replica *fleet* behind the health-aware
    rendezvous router (``repro.serving.fleet``) and drive a chaos storm
    through it — one replica killed mid-storm, another stalled — proving
    the fleet contract live: every admitted session is answered or
    explicitly shed (none lost, none double-counted), the dead replica is
    ejected and its sessions fail over with their remaining deadline
    budget, and the stalled replica's backlog sheds on deadlines instead
    of wedging the fleet,
12. survive a restart: publish the quantized store **to disk**
    (``repro.serving.snapshot`` — chunked, checksummed, content-addressed,
    behind an atomically-flipped manifest pointer), run a daily refresh
    whose delta publish rewrites only the changed chunks, kill the
    process-pool workers, then warm-start a gateway *and* revive a dead
    fleet replica straight from the manifest — tables and codes are
    mmapped read-only, no re-quantization, and the ranked lists are
    bit-identical to the pre-kill deployment,
13. rotate the codes: train the OPQ learned rotation into the IVF-PQ
    deployment (``rotation="opq"``), publish the rotation matrix and the
    frozen int8 query scale as content-addressed chunks alongside the
    rotated codebooks (``quantization=("int8", "opq")``), bound on-disk
    retention with ``keep_last``, then kill everything and warm-start —
    the restored gateway and a revived fleet replica serve the rotated,
    integer-scored codes bit-identically to the in-memory trainer, with
    zero retraining.

Run with:  python examples/online_serving.py
"""

import asyncio
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.data.industrial import industrial_config
from repro.eval import format_float_table
from repro.eval.ab_test import ABTestConfig, OnlineABTest
from repro.eval.serving_metrics import (
    compression_report,
    load_test_rows,
    summarize_gateway,
)
from repro.experiments.common import ExperimentSettings, build_model, train_model
from repro.pipeline import prepare_scenario
from repro.serving import deploy_model
from repro.serving.abtest import (
    ABExperimentConfig,
    BucketRouter,
    OnlineABExperiment,
    close_arms,
)
from repro.serving.fleet import (
    ChaosController,
    ChaosEvent,
    FleetReplica,
    deploy_fleet,
)
from repro.serving.gateway import (
    DeadlineExceededError,
    OverloadError,
    ServingGateway,
    VersionedEmbeddingStore,
    deploy_gateway,
    zipf_query_ids,
)


def main() -> None:
    settings = ExperimentSettings(scale="tiny", embedding_dim=16,
                                  pretrain_epochs=1, finetune_epochs=3, learning_rate=5e-3)

    print("1) Offline stage: generating data and training both buckets ...")
    scenario = prepare_scenario(industrial_config("Sep. A", scale=settings.scale))
    baseline = build_model("KGAT", scenario, settings)
    train_model(baseline, scenario, settings)
    garcia = build_model("GARCIA", scenario, settings)
    train_model(garcia, scenario, settings)

    print("2) Deploying both models through the serving pipeline ...")
    baseline_pipeline = deploy_model(baseline, scenario.dataset, top_k=5)
    garcia_pipeline = deploy_model(garcia, scenario.dataset, top_k=5)

    print("3) Running the simulated 7-day bucket (A/B) test ...\n")
    ab_test = OnlineABTest(
        scenario.dataset, scenario.oracle,
        config=ABTestConfig(num_days=7, sessions_per_day=500, top_k=5, seed=0),
    )
    outcome = ab_test.run(baseline_pipeline, garcia_pipeline, start_date="2022/10/01")
    print(format_float_table(outcome.as_rows(), title="Fig. 10 style: relative improvement per day (%)"))
    print(f"\nAggregated absolute gains: CTR {outcome.absolute_ctr_gain():+.3f} pp, "
          f"Valid CTR {outcome.absolute_valid_ctr_gain():+.3f} pp\n")

    print("4) Case study (Fig. 11 style): ranked lists for two long-tail queries\n")
    frequencies = scenario.dataset.query_frequencies()
    tail_ids = sorted(scenario.head_tail.tail_query_ids, key=lambda q: -frequencies[q])[:2]
    for query_id in tail_ids:
        query = scenario.dataset.query_by_id(query_id)
        print(f"Query: '{query.text}' (search PV {query.frequency})")
        rows = []
        for system, pipeline in (("BASELINE", baseline_pipeline), ("GARCIA", garcia_pipeline)):
            for entry in pipeline.rank_with_metadata(query_id, 5):
                rows.append(
                    {
                        "system": system,
                        "rank": entry.rank,
                        "service": entry.name,
                        "MAU": entry.mau,
                        "rating": "*" * entry.rating,
                    }
                )
        print(format_float_table(rows))
        print()

    print("5) Gateway deployment: GARCIA behind ANN retrieval + micro-batching + cache\n")
    num_requests, batch_size, top_k = 2_000, 32, 5
    stream = zipf_query_ids(scenario.dataset.num_queries, num_requests,
                            exponent=1.1, seed=0)
    summaries = []
    # The tiny catalogue only has ~60 services, so the IVF index probes half
    # of its cells; at production scale (see bench_serving_throughput.py at
    # 12k services) the probed fraction — and the speed-up — is far larger.
    ivf_params = dict(num_lists=8, num_probes=4)
    for mode, index, index_params, cache_capacity in (
        ("exact scan", "exact", None, 0),
        ("ivf", "ivf", ivf_params, 0),
        ("ivf+cache", "ivf", ivf_params, 4_096),
    ):
        gateway = deploy_gateway(garcia, index=index, index_params=index_params,
                                 top_k=top_k, max_batch_size=batch_size,
                                 cache_capacity=cache_capacity)
        started = time.perf_counter()
        for offset in range(0, len(stream), batch_size):
            handles = [gateway.submit(int(query_id))
                       for query_id in stream[offset:offset + batch_size]]
            gateway.flush()
            for handle in handles:
                handle.result(0)
        elapsed = time.perf_counter() - started
        gateway.recall_probe(k=top_k, num_queries=256, seed=1)
        summaries.append(summarize_gateway(mode, gateway, elapsed_s=elapsed))
    print(format_float_table(
        load_test_rows(summaries),
        title=f"Gateway load test: {num_requests} Zipf requests, "
              f"top-{top_k}, batch {batch_size}",
    ))
    ivf = summaries[1]
    print(f"\nIVF holds recall@{top_k} = {ivf.recall_at_k:.3f} at "
          f"{ivf.qps:,.0f} QPS (p99 {ivf.p99_ms:.2f} ms); the same A/B traffic "
          "above can be served straight from the gateway.  At this toy "
          "catalogue size the exact scan is still cheap — "
          "benchmarks/bench_serving_throughput.py shows the ANN win at 12k "
          "services.")

    print("\n6) Quantized serving: int8 + PQ snapshots behind the IVF-PQ index\n")
    # Toy-catalogue sizing: a ~60-service table needs few coarse cells, and
    # the PQ codebooks must stay small or they would outweigh the codes they
    # compress (at 12k services the defaults amortize them away).
    gateway = deploy_gateway(garcia, index="ivfpq",
                             index_params=dict(num_lists=8, num_probes=6,
                                               num_subspaces=4),
                             quantization=("int8", "pq"),
                             quantization_params={"pq": dict(num_subspaces=4,
                                                             num_centroids=16)},
                             top_k=top_k, max_batch_size=batch_size,
                             cache_capacity=0)
    started = time.perf_counter()
    for offset in range(0, len(stream), batch_size):
        handles = [gateway.submit(int(query_id))
                   for query_id in stream[offset:offset + batch_size]]
        gateway.flush()
        for handle in handles:
            handle.result(0)
    elapsed = time.perf_counter() - started
    gateway.recall_probe(k=top_k, num_queries=256, seed=1)
    quant = summarize_gateway("ivfpq", gateway, elapsed_s=elapsed)
    snapshot = gateway.store.snapshot()
    print(format_float_table(
        compression_report(snapshot.all_services(), {
            "int8": snapshot.quantized_services("int8"),
            "pq": snapshot.quantized_services("pq"),
        }),
        title="Published service-table snapshots (float32 baseline)",
    ))
    print(f"\nIVF-PQ serves the same Zipf load at {quant.qps:,.0f} QPS with "
          f"recall@{top_k} = {quant.recall_at_k:.3f}; the quantized tables "
          "hot-swap atomically with every daily refresh (Sec. V-F / Fig. 9). "
          "benchmarks/bench_quantized_serving.py shows the memory/QPS win at "
          "12k services.")

    print("\n7) Sharded serving: one worker per shard, scatter/gather top-K\n")
    gateway = deploy_gateway(garcia, index="exact", num_shards=4,
                             workers="thread", top_k=top_k,
                             max_batch_size=batch_size, cache_capacity=0)
    started = time.perf_counter()
    for offset in range(0, len(stream), batch_size):
        handles = [gateway.submit(int(query_id))
                   for query_id in stream[offset:offset + batch_size]]
        gateway.flush()
        for handle in handles:
            handle.result(0)
    elapsed = time.perf_counter() - started
    gateway.recall_probe(k=top_k, num_queries=256, seed=1)
    sharded = summarize_gateway("sharded exact", gateway, elapsed_s=elapsed)
    print(format_float_table(
        load_test_rows([sharded]),
        title=f"Sharded gateway ({gateway.num_shards} shards, "
              f"{gateway.workers} workers)",
    ))
    print("\n" + format_float_table(
        gateway.telemetry.shard_rows(), title="Per-shard breakdown"))
    version = gateway.hot_swap_from_model(garcia)
    print(f"\nExact per-shard scans keep recall@{top_k} = "
          f"{sharded.recall_at_k:.3f} (the merge preserves single-index "
          f"results bit for bit), and the daily refresh hot-swapped every "
          f"worker to v{version} through the two-phase flip — each worker "
          "prepared the new tables before the version became visible, so no "
          "request ever saw mixed versions.  At 12k services the sharded "
          "tier beats the single-process gateway even on one core "
          "(benchmarks/bench_sharded_serving.py).")
    gateway.close()

    print("\n8) Asyncio-native front-end: open-loop load, bounded admission\n")
    # One event loop holds every in-flight request as a future — no thread
    # per wait — while the same micro-batch deadlines coalesce the scoring.
    # The admission queue is bounded (overload sheds with OverloadError) and
    # every request carries a deadline (missed ones are shed *before*
    # scoring), so the gateway degrades by shedding, not by collapsing.
    gateway = deploy_gateway(garcia, index="exact", top_k=top_k,
                             max_batch_size=batch_size, cache_capacity=0,
                             max_queue=512, overload="reject",
                             default_deadline_s=0.25, loop_confined=True)
    offered_qps = 4_000.0
    # benchmarks/serving_load.py:drive_open_loop is the canonical open-loop
    # driver (the async bench uses it); examples run as plain scripts with
    # only `repro` importable, so the same protocol is spelled out inline
    # here against the public gateway API.
    stats = {"completed": 0, "rejected": 0, "missed": 0,
             "in_flight": 0, "peak": 0}

    async def one_request(query_id: int) -> None:
        stats["in_flight"] += 1
        stats["peak"] = max(stats["peak"], stats["in_flight"])
        try:
            await gateway.search_async(int(query_id))
        except OverloadError:
            stats["rejected"] += 1
        except DeadlineExceededError:
            stats["missed"] += 1
        else:
            stats["completed"] += 1
        finally:
            stats["in_flight"] -= 1

    async def open_loop() -> float:
        # Poisson arrivals at the offered rate, submitted whether or not
        # earlier requests finished — real user traffic does not wait.
        gaps = np.random.default_rng(2).exponential(1.0 / offered_qps,
                                                    size=len(stream))
        loop = asyncio.get_running_loop()
        next_at = loop.time()
        tasks = []
        started = time.perf_counter()
        for gap, query_id in zip(gaps, stream):
            next_at += float(gap)
            delay = next_at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.ensure_future(one_request(query_id)))
        await asyncio.gather(*tasks)
        await gateway.stop_async()
        return time.perf_counter() - started

    elapsed = asyncio.run(open_loop())
    summary = gateway.summary()
    print(f"Offered {offered_qps:,.0f} QPS (Poisson, open loop): "
          f"{stats['completed']} completed in {elapsed:.2f}s "
          f"({stats['completed'] / elapsed:,.0f} sustained QPS), "
          f"p99 {summary['p99_ms']:.2f} ms")
    print(f"Peak in-flight {stats['peak']} on one loop; queue depth peaked at "
          f"{summary['queue_depth_max']:.0f}/512; shed "
          f"{stats['rejected']} overloaded + {stats['missed']} past-deadline "
          "requests before scoring.")
    print("\nThe same gateway still answers sync callers (rank/search) "
          "through the identical async core — one request path, two calling "
          "conventions.  benchmarks/bench_async_serving.py holds 1k-4k "
          "requests in flight at 12k services, >= 1.4x the thread path's "
          "QPS at its own concurrency ceiling.")
    gateway.close()

    print("\n9) Gateway-backed A/B: the Fig. 10 bucket test through the "
          "serving stack\n")
    # The quality experiment of step 3 and the serving tier of steps 5-8
    # finally meet: deterministic session hashing splits traffic 90/10,
    # each bucket is a real gateway deployment (its own model AND its own
    # scoring config), and per-bucket telemetry tags make serving cost
    # reportable per experiment arm — quality and cost from ONE run.
    router = BucketRouter(
        {"control": 0.9, "treatment": 0.1},
        arms={
            "control": deploy_gateway(baseline, index="exact", top_k=top_k,
                                      cache_capacity=0),
            "treatment": deploy_gateway(garcia, index="ivf",
                                        index_params=ivf_params, top_k=top_k,
                                        cache_capacity=0),
        },
        salt=0,
    )
    experiment = OnlineABExperiment(
        scenario.dataset, scenario.oracle, router,
        config=ABExperimentConfig(num_days=3, sessions_per_day=600, top_k=top_k,
                                  rate_qps=2_000.0, seed=0),
    )
    report = experiment.run(start_date="2022/10/01")
    print(format_float_table(
        report.joint_rows(),
        title="Joint report: daily CTR per bucket + relative improvement (%)"))
    print("\n" + format_float_table(
        report.cost_rows(), title="Per-bucket serving cost (same run)"))
    summary = report.summary()
    print(f"\nGARCIA's bucket gains {summary['absolute_ctr_gain_pp']:+.3f} pp CTR "
          f"({summary['absolute_valid_ctr_gain_pp']:+.3f} pp Valid CTR) while its "
          "serving cost is measured on the same tagged traffic — the "
          "paper's +0.79 pp week-long bucket test (Fig. 10), now replayed "
          "through the gateway tier.  benchmarks/bench_gateway_ab.py runs "
          "this at 5k sessions/day for 7 days.")
    close_arms(router)

    print("\n10) Observability: trace the sharded tier, explain the slowest "
          "request\n")
    # Every request is traced (sample_every=1, slow threshold 0 ms keeps
    # them all) through the sharded scatter/gather path; batch-level spans
    # are recorded once per batch and grafted into each member trace, so
    # tracing every request still costs ~2 us each.
    gateway = deploy_gateway(garcia, index="exact", num_shards=4,
                             workers="thread", top_k=top_k,
                             max_batch_size=batch_size, cache_capacity=0,
                             tracing=True, trace_sample_every=1,
                             slow_trace_ms=0.0)

    async def traced_traffic() -> None:
        for offset in range(0, 512, batch_size):
            await asyncio.gather(*(
                gateway.search_async(int(query_id))
                for query_id in stream[offset:offset + batch_size]
            ))
        await gateway.stop_async()

    asyncio.run(traced_traffic())
    recorder = gateway.flight_recorder
    print(f"Flight recorder: kept {len(recorder)} of "
          f"{recorder.stats()['seen']:.0f} traces (every trace qualifies "
          "here; the bounded ring then holds only the most recent).")
    print("\nSlowest request, explained:\n")
    print(gateway.explain(recorder.slowest()))
    health = gateway.health()
    print("\nHealth snapshot (poll-cheap, fleet-router feed):")
    for key, value in health.as_dict().items():
        print(f"  {key:>20s} = {value:.3f}")
    exposition = gateway.telemetry.export_prometheus()
    lines = exposition.splitlines()
    print(f"\nPrometheus exposition ({len(lines)} lines; first 10):")
    for line in lines[:10]:
        print(f"  {line}")
    print("\nThe same numbers round-trip through "
          "gateway.telemetry.export_json() — raw histogram bucket counts "
          "included, so a scraper can recompute any quantile.  Memory stays "
          "O(buckets + flight-ring capacity) no matter how long the replica "
          "runs.")
    gateway.close()

    print("\n11) Fleet: 3 replicas, rendezvous routing, a chaos storm\n")
    # Three gateway replicas share one versioned store behind the
    # health-aware router: each session has a rendezvous owner, a dead
    # owner's sessions fail over with their remaining deadline budget, and
    # health probes (run lazily from the request path) eject it from the
    # serving set.  The chaos controller injects the faults mid-storm.
    fleet = deploy_fleet(garcia, num_replicas=3, index="exact", top_k=top_k,
                         max_batch_size=batch_size, cache_capacity=0,
                         max_queue=256, overload="reject",
                         default_deadline_s=0.25)
    num_sessions, storm_qps = 900, 1_500.0
    expected_s = num_sessions / storm_qps
    ChaosController(fleet, [
        ChaosEvent(at_s=0.2 * expected_s, action="kill", replica="replica-1"),
        ChaosEvent(at_s=0.5 * expected_s, action="stall", replica="replica-2",
                   duration_s=0.08),
    ])
    ledger = {"completed": 0, "rejected": 0, "missed": 0}

    async def one_session(session: int) -> None:
        try:
            await fleet.search_async(int(stream[session % len(stream)]),
                                     session_id=session)
        except OverloadError:
            ledger["rejected"] += 1
        except DeadlineExceededError:
            ledger["missed"] += 1
        else:
            ledger["completed"] += 1

    async def storm() -> None:
        gaps = np.random.default_rng(11).exponential(1.0 / storm_qps,
                                                     size=num_sessions)
        loop = asyncio.get_running_loop()
        next_at = loop.time()
        tasks = []
        fleet.chaos.arm()
        for session, gap in zip(range(num_sessions), gaps):
            next_at += float(gap)
            delay = next_at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.ensure_future(one_session(session)))
        await asyncio.gather(*tasks)
        await fleet.stop_async()

    asyncio.run(storm())
    summary = fleet.summary()
    print(format_float_table(fleet.replica_rows(),
                             title="Replica membership after the storm"))
    accounted = sum(ledger.values())
    print(f"\nOffered {num_sessions} sessions through the storm: "
          f"{ledger['completed']} answered, {ledger['rejected']} shed, "
          f"{ledger['missed']} past-deadline — {accounted} accounted, "
          f"{num_sessions - accounted} lost.")
    print(f"The router failed over {summary['failovers']:.0f} in-flight "
          f"request(s) from the killed replica, ejected "
          f"{summary['ejections']:.0f} replica(s), and fleet telemetry "
          f"counts {summary['requests']:.0f} answered requests — exactly "
          "the sessions answered above, so no retry was double-counted. "
          "benchmarks/bench_fleet_serving.py gates this contract (and QPS "
          "scaling vs replica count) in CI.")
    fleet.close()

    print("\n12) Durable snapshots: publish to disk, kill the workers, "
          "warm-start from the manifest\n")
    # Everything so far rebuilt the store from the model on every deploy —
    # a restart re-quantizes the whole catalogue (int8 scales + PQ codebook
    # training) before the first request.  ``durable_dir`` persists every
    # published version as checksummed, content-addressed chunks behind an
    # atomically-flipped MANIFEST pointer, and a warm start mmaps them back.
    snap_dir = tempfile.mkdtemp(prefix="garcia-snapshots-")
    gateway = deploy_gateway(garcia, index="int8", num_shards=4,
                             workers="process",
                             quantization=("int8", "pq"),
                             quantization_params={"pq": {"num_subspaces": 4}},
                             durable_dir=snap_dir, top_k=top_k,
                             max_batch_size=batch_size, cache_capacity=0)
    probe_ids = [int(stream[i]) for i in range(8)]
    before_kill = [gateway.rank(query_id, top_k) for query_id in probe_ids]
    print(f"Deployed 4 process-backed shards publishing durably to "
          f"{snap_dir} (version {gateway.store.version}).")

    # A stale replica built from version 0, then killed — it will sleep
    # through the daily refresh and catch up from the manifest on revive.
    stale = VersionedEmbeddingStore.restore(snap_dir)
    replica = FleetReplica("lazarus", ServingGateway(stale, index="exact",
                                                     top_k=top_k,
                                                     cache_capacity=0))
    replica.kill()

    # Daily refresh: the service tables are unchanged, so the delta publish
    # rewrites only the drifted query chunks — every service-side chunk
    # (fp, int8 codes/scales, PQ codebooks/codes) is shared with v0.
    snapshot = gateway.store.snapshot()
    drifted = snapshot.queries + np.float32(0.01)
    version = gateway.store.publish(drifted, snapshot.services)
    after_refresh = [gateway.rank(query_id, top_k) for query_id in probe_ids]
    print(f"Daily refresh published version {version}: process workers "
          "hydrated their shard rows straight off the mmapped chunks, and "
          "only the changed query chunks hit the disk.")

    gateway.close()  # kills every process-pool worker; the manifest survives
    warm = deploy_gateway(warm_start=snap_dir, index="int8", top_k=top_k,
                          max_batch_size=batch_size, cache_capacity=0)
    after_warm = [warm.rank(query_id, top_k) for query_id in probe_ids]
    assert after_warm == after_refresh, "warm start must be bit-identical"
    print(f"Killed the workers, then warm-started {warm.store.num_shards} "
          f"shards at version {warm.store.version} from the manifest — no "
          "re-quantization, tables mmapped read-only, ranked lists "
          "bit-identical to the pre-kill deployment.")
    warm.close()

    # The dead replica revives *through* the same manifest: one call clears
    # its faults and hydrates the store through the two-phase flip.
    revived_version = replica.revive(warm_start=snap_dir)
    assert revived_version == version and not replica.faulted
    print(f"Revived the dead fleet replica from the manifest: it slept "
          f"through the refresh at version 0 and woke up serving version "
          f"{revived_version}.  benchmarks/bench_snapshot_store.py gates "
          "the warm-start speedup (>= 10x vs the cold re-quantize boot) "
          "and the bit-identical contract in CI.")
    replica.close()

    print("\n13) OPQ rotation + integer scoring, snapshot round-trip\n")
    # The IVF-PQ residual codebooks now train through a learned orthonormal
    # rotation (OPQ: alternating k-means / Procrustes), and the int8 path
    # scores with integer arithmetic end to end under a query-quantization
    # step frozen at publish time.  Both artifacts — the rotation matrix and
    # the query scale — are published as content-addressed chunks, so a
    # restart serves the rotated codes without retraining anything.
    opq_dir = tempfile.mkdtemp(prefix="garcia-opq-snapshots-")
    opq_params = dict(num_lists=8, num_probes=6, num_subspaces=4,
                      num_centroids=16, rotation="opq")
    gateway = deploy_gateway(garcia, index="ivfpq", index_params=opq_params,
                             quantization=("int8", "opq"),
                             quantization_params={"opq": dict(num_subspaces=4,
                                                              num_centroids=16)},
                             durable_dir=opq_dir, keep_last=2, top_k=top_k,
                             max_batch_size=batch_size, cache_capacity=0)
    snapshot = gateway.store.snapshot()
    rotation = snapshot.quantized_services("opq").quantizer.rotation_
    print(f"Trained the OPQ rotation in-memory: {rotation.shape[0]}x"
          f"{rotation.shape[1]} orthonormal matrix published at version "
          f"{gateway.store.version}, int8 query scale frozen = "
          f"{snapshot.quantized_services('int8').query_scale:.6f}.")

    # keep_last=2 bounds retention: three daily refreshes later, only the
    # newest two manifests (plus the live pointer target) remain on disk.
    for _ in range(3):
        snapshot = gateway.store.snapshot()
        gateway.store.publish(snapshot.queries + np.float32(0.001),
                              snapshot.services)
    manifests = sorted(
        p.name for p in (Path(opq_dir) / "manifests").glob("v*.json")
        if "-index-" not in p.name)
    print(f"Three refreshes with keep_last=2 left {manifests} on disk — "
          "older manifests and their unreferenced chunks were pruned after "
          "each activate.")
    after_refresh = [gateway.rank(query_id, top_k) for query_id in probe_ids]
    # Persist the trained index (coarse centroids + rotated codebooks) so
    # the warm start below restores it instead of re-running k-means.
    gateway.persist_index()
    gateway.close()

    warm = deploy_gateway(warm_start=opq_dir, index="ivfpq", top_k=top_k,
                          max_batch_size=batch_size, cache_capacity=0)
    after_warm = [warm.rank(query_id, top_k) for query_id in probe_ids]
    assert after_warm == after_refresh, "OPQ warm start must be bit-identical"
    warm.close()

    replica = FleetReplica("opq-lazarus", ServingGateway(
        VersionedEmbeddingStore.restore(opq_dir), index="ivfpq",
        top_k=top_k, cache_capacity=0))
    replica.kill()
    replica.revive(warm_start=opq_dir)
    revived = [replica.gateway.rank(query_id, top_k) for query_id in probe_ids]
    assert revived == after_refresh, "revived replica must serve identically"
    replica.close()
    print("Warm-started gateway AND revived fleet replica rank the probe "
          "queries bit-identically to the in-memory trainer: the rotation, "
          "the rotated codebooks and the frozen query scale all came back "
          "off the mmapped chunks — no k-means, no Procrustes, no "
          "re-quantization at boot.  benchmarks/bench_quantized_serving.py "
          "gates the OPQ recall and integer-path QPS wins at 12k services.")

    print("\n14) Wire replication: an empty-disk replica boots from a peer\n")
    # Every durable trick so far assumed the host already owned the disk.
    # A brand-new host joining the fleet has *nothing* — no chunks, no
    # manifest, no pointer.  A SnapshotServer on any healthy host serves
    # its durable dir over a framed socket protocol, and deploy_gateway
    # pulls it down (manifest first, then only the chunks absent locally,
    # each checksum-verified before it lands) before the usual mmap boot.
    from repro.serving.snapshot import SnapshotFetcher, SnapshotServer

    empty_dir = tempfile.mkdtemp(prefix="garcia-newhost-")
    with SnapshotServer(opq_dir) as server:
        newcomer = deploy_gateway(warm_start=empty_dir, index="ivfpq",
                                  remote_peer=server.address, top_k=top_k,
                                  max_batch_size=batch_size, cache_capacity=0)
        hydrated = [newcomer.rank(query_id, top_k) for query_id in probe_ids]
        assert hydrated == after_refresh, "wire hydration must be bit-identical"
        newcomer.close()

        # Content addressing makes the second fetch a no-op: every chunk
        # the live manifest references already landed, so nothing moves.
        refetch = SnapshotFetcher(server.address, empty_dir).fetch()
        assert refetch.chunks_fetched == 0 and refetch.bytes_fetched == 0
    print(f"A host with an empty durable dir booted bit-identically from "
          f"the peer — trained IVF-PQ sidecar included — and a re-fetch "
          f"moved {refetch.bytes_fetched} bytes ({refetch.chunks_already_local} "
          "chunks already local).  A fetch killed mid-stream resumes without "
          "re-transferring landed chunks, and the server pins the version it "
          "is streaming so keep_last pruning can never delete it mid-fetch: "
          "tests/test_snapshot_replication.py drills the full fault matrix, "
          "and benchmarks/bench_snapshot_replication.py gates the delta "
          "economics (< 50% of cold-fetch bytes) plus hydrate-parity recall "
          "in CI.")


if __name__ == "__main__":
    main()
