"""Long-tail analysis: quantify the skew GARCIA is designed to fix.

This example mirrors the motivating analysis of the paper's introduction:

* how concentrated search traffic is (top 1 % of queries vs page views),
* how much sparser the feedback of tail queries is,
* how the knowledge-transfer bridge looks in practice (anchor-pair coverage
  and examples of mined <tail query, head query> pairs),
* how much the multi-granularity contrastive losses help the tail slice.

Run with:  python examples/long_tail_analysis.py
"""

import numpy as np

from repro.data.industrial import industrial_config
from repro.eval import Evaluator, format_float_table
from repro.experiments.common import ExperimentSettings, build_model, train_model
from repro.models.garcia.anchor_pairs import coverage, mine_anchor_pairs
from repro.pipeline import prepare_scenario


def traffic_concentration(scenario) -> None:
    frequencies = np.sort(scenario.dataset.query_frequencies())[::-1]
    total = frequencies.sum()
    print("Traffic concentration (the long-tail phenomenon):")
    for fraction in (0.01, 0.05, 0.10, 0.50):
        count = max(1, int(round(fraction * len(frequencies))))
        share = frequencies[:count].sum() / total
        print(f"  top {fraction:>5.0%} of queries ({count:>4d}) carry {share:6.1%} of search PV")
    print()


def feedback_sparsity(scenario) -> None:
    exposures = np.bincount(
        [i.query_id for i in scenario.splits.train],
        minlength=scenario.dataset.num_queries,
    )
    head = scenario.head_tail.head_array()
    tail = scenario.head_tail.tail_array()
    print("Feedback sparsity (training exposures per query):")
    print(f"  head queries: mean {exposures[head].mean():8.1f}   median {np.median(exposures[head]):6.0f}")
    print(f"  tail queries: mean {exposures[tail].mean():8.1f}   median {np.median(exposures[tail]):6.0f}")
    print()


def anchor_pair_report(scenario) -> None:
    pairs = mine_anchor_pairs(scenario.dataset, scenario.head_tail, scenario.forest)
    print(f"Knowledge-transfer anchor pairs: {len(pairs)} mined "
          f"({coverage(pairs, scenario.head_tail):.1%} of tail queries covered)")
    for pair in list(pairs.values())[:5]:
        tail_query = scenario.dataset.query_by_id(pair.tail_query_id)
        head_query = scenario.dataset.query_by_id(pair.head_query_id)
        print(
            f"  tail '{tail_query.text}' (PV {tail_query.frequency:>5d})  ->  "
            f"head '{head_query.text}' (PV {head_query.frequency:>7d}), "
            f"shared attributes: {pair.shared_attributes}"
        )
    print()


def tail_improvement(scenario) -> None:
    settings = ExperimentSettings(scale="tiny", embedding_dim=16,
                                  pretrain_epochs=2, finetune_epochs=4, learning_rate=5e-3)
    evaluator = Evaluator()
    rows = []
    for label, config in (
        ("GARCIA w.o. ALL (no contrastive learning)", settings.garcia_config().without("all")),
        ("GARCIA (full multi-granularity CL)", settings.garcia_config()),
    ):
        model = build_model("GARCIA", scenario, settings, garcia_config=config)
        train_model(model, scenario, settings)
        report = evaluator.evaluate(model, scenario.splits.test, scenario.head_tail, model_name=label)
        rows.append({"variant": label, "tail_auc": report.tail.auc, "overall_auc": report.overall.auc})
    print(format_float_table(rows, title="Contribution of multi-granularity CL to the tail slice"))


def main() -> None:
    scenario = prepare_scenario(industrial_config("Sep. A", scale="tiny"))
    print(f"Scenario: {scenario.name} — {scenario.dataset.num_queries} queries, "
          f"{scenario.dataset.num_services} services, "
          f"{scenario.dataset.num_interactions} interactions\n")
    traffic_concentration(scenario)
    feedback_sparsity(scenario)
    anchor_pair_report(scenario)
    tail_improvement(scenario)


if __name__ == "__main__":
    main()
