"""Ablation study: which pieces of GARCIA matter?

Reproduces the two ablations of the paper at example scale:

* Fig. 3 — adaptive (dual head/tail) encoding vs a shared encoder,
* Fig. 4 — removing individual contrastive granularities (KTCL/SECL/IGCL),

plus a sensitivity mini-sweep of the temperature (Fig. 8 style).

Run with:  python examples/ablation_study.py
"""

from repro.eval import format_float_table
from repro.experiments import fig3_adaptive_encoding, fig4_mgcl_ablation, fig8_temperature
from repro.experiments.common import ExperimentSettings


def main() -> None:
    settings = ExperimentSettings(scale="tiny", embedding_dim=16,
                                  pretrain_epochs=1, finetune_epochs=3, learning_rate=5e-3)

    print("Fig. 3 — adaptive encoding ablation (Sep. A only, example scale)\n")
    fig3 = fig3_adaptive_encoding.run(settings, datasets=["Sep. A"])
    print(format_float_table(fig3.rows))

    print("\nFig. 4 — multi-granularity contrastive learning ablation (Sep. A only)\n")
    fig4 = fig4_mgcl_ablation.run(settings, datasets=["Sep. A"])
    print(format_float_table(fig4.rows))

    print("\nFig. 8 — temperature sensitivity (reduced grid)\n")
    fig8 = fig8_temperature.run(settings, values=(0.05, 0.1, 0.5, 1.0))
    print(format_float_table(fig8.rows))

    print("\nSee benchmarks/ for the full-grid versions of these experiments.")


if __name__ == "__main__":
    main()
