"""Quickstart: train GARCIA on a synthetic service-search scenario.

The script walks the full pipeline the paper describes:

1. generate a long-tail service-search dataset (stand-in for Alipay logs),
2. build the service-search graph and intention forest,
3. pre-train GARCIA with multi-granularity contrastive learning,
4. fine-tune on the click objective,
5. evaluate head / tail / overall AUC, GAUC and NDCG@10 against LightGCN.

Run with:  python examples/quickstart.py
"""

from repro.data.industrial import industrial_config
from repro.eval import Evaluator, format_float_table
from repro.experiments.common import ExperimentSettings, build_model, train_model
from repro.pipeline import prepare_scenario


def main() -> None:
    settings = ExperimentSettings(
        scale="tiny",
        embedding_dim=16,
        pretrain_epochs=2,
        finetune_epochs=4,
        learning_rate=5e-3,
    )

    print("1) Generating the synthetic 'Sep. A' service-search scenario ...")
    scenario = prepare_scenario(industrial_config("Sep. A", scale=settings.scale))
    stats = scenario.dataset.statistics(
        head_query_ids=scenario.head_tail.head_array(), splits=scenario.splits.sizes
    )
    print(format_float_table([stats.as_row()], title="Dataset statistics (Table I style)"))
    print(f"\nService-search graph: {scenario.graph}")
    print(f"Intention forest:     {scenario.forest}\n")

    print("2) Training GARCIA (pre-train -> fine-tune) and the LightGCN baseline ...")
    evaluator = Evaluator()
    rows = []
    for model_name in ("LightGCN", "GARCIA"):
        model = build_model(model_name, scenario, settings)
        train_model(model, scenario, settings)
        report = evaluator.evaluate(
            model, scenario.splits.test, scenario.head_tail, model_name=model.name
        )
        rows.append(
            {
                "model": model.name,
                "head_auc": report.head.auc,
                "tail_auc": report.tail.auc,
                "overall_auc": report.overall.auc,
                "tail_gauc": report.tail.gauc,
                "tail_ndcg@10": report.tail.ndcg,
            }
        )

    print()
    print(format_float_table(rows, title="Test-set ranking quality (Table III / IV style)"))
    print("\nDone.  See examples/long_tail_analysis.py and examples/online_serving.py for more.")


if __name__ == "__main__":
    main()
