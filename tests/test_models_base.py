"""Tests for shared model infrastructure: feature encoder, scoring head, caching."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.models.base import NodeFeatureEncoder, RankingModel, ScoringHead


class TestNodeFeatureEncoder:
    def test_output_covers_every_node(self, tiny_graph, rng):
        encoder = NodeFeatureEncoder(tiny_graph, embedding_dim=8, rng=rng)
        output = encoder()
        assert output.shape == (tiny_graph.num_nodes, 8)

    def test_attribute_tables_are_registered(self, tiny_graph, rng):
        encoder = NodeFeatureEncoder(tiny_graph, embedding_dim=8, rng=rng)
        names = dict(encoder.named_parameters()).keys()
        assert any("attr_city" in name for name in names)
        assert any("attr_brand" in name for name in names)
        assert any("attr_category" in name for name in names)

    def test_gradients_reach_id_and_attribute_embeddings(self, tiny_graph, rng):
        encoder = NodeFeatureEncoder(tiny_graph, embedding_dim=8, rng=rng)
        encoder().sum().backward()
        assert encoder.id_embedding.weight.grad is not None
        assert getattr(encoder, "attr_city").weight.grad is not None

    def test_nodes_with_same_attributes_share_attribute_component(self, tiny_graph, tiny_dataset, rng):
        encoder = NodeFeatureEncoder(tiny_graph, embedding_dim=8, rng=rng)
        output = encoder().numpy()
        id_part = encoder.id_embedding(np.arange(tiny_graph.num_nodes)).numpy()
        attribute_part = output - id_part
        # Two queries with identical correlation attributes get identical
        # attribute components.
        by_attrs = {}
        for query in tiny_dataset.queries:
            key = tuple(sorted(query.attributes.items()))
            by_attrs.setdefault(key, []).append(query.query_id)
        duplicates = [ids for ids in by_attrs.values() if len(ids) > 1]
        if duplicates:
            group = duplicates[0]
            assert np.allclose(attribute_part[group[0]], attribute_part[group[1]])


class TestScoringHead:
    def test_output_is_probability(self, rng):
        head = ScoringHead(embedding_dim=8, rng=rng)
        queries = Tensor(rng.normal(size=(10, 8)))
        services = Tensor(rng.normal(size=(10, 8)))
        probabilities = head(queries, services).numpy()
        assert probabilities.shape == (10,)
        assert np.all((probabilities > 0) & (probabilities < 1))

    def test_gradients_flow(self, rng):
        head = ScoringHead(embedding_dim=4, rng=rng)
        output = head(Tensor(rng.normal(size=(3, 4)), requires_grad=True),
                      Tensor(rng.normal(size=(3, 4)), requires_grad=True))
        output.sum().backward()
        assert all(parameter.grad is not None for parameter in head.parameters())


class _ConstantModel(RankingModel):
    """Minimal RankingModel used to exercise the caching logic."""

    name = "constant"

    def __init__(self, graph):
        super().__init__(graph)
        self.compute_calls = 0
        self._value = 0.5

    def compute_embeddings(self):
        self.compute_calls += 1
        dim = 4
        return {
            "query": np.full((self.graph.num_queries, dim), self._value),
            "service": np.full((self.graph.num_services, dim), self._value),
        }

    def score_pairs(self, query_repr, service_repr):
        return (query_repr * service_repr).sum(axis=1).sigmoid()


class TestRankingModelCaching:
    def test_embeddings_are_cached_until_invalidated(self, tiny_graph):
        model = _ConstantModel(tiny_graph)
        model.query_embeddings()
        model.service_embeddings()
        assert model.compute_calls == 1
        model.predict([0, 1], [0, 1])
        assert model.compute_calls == 1
        model.invalidate_cache()
        model.query_embeddings()
        assert model.compute_calls == 2

    def test_predict_shapes_and_range(self, tiny_graph):
        model = _ConstantModel(tiny_graph)
        predictions = model.predict([0, 1, 2], [0, 1, 2])
        assert predictions.shape == (3,)
        assert np.all((predictions > 0) & (predictions < 1))

    def test_training_loss_abstract(self, tiny_graph):
        with pytest.raises(NotImplementedError):
            RankingModel(tiny_graph).training_loss(None)
