"""End-to-end integration tests: data → graph → training → evaluation → serving.

These follow the exact workflow of the README quickstart and check the
qualitative claims the reproduction is expected to preserve:

* trained models beat random ranking by a clear margin,
* GARCIA's full pipeline (pre-train → fine-tune → deploy) runs and serves,
* the deployed pipeline produces better-quality tail rankings than an
  untrained embedding table.
"""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticConfig
from repro.eval import Evaluator
from repro.models.garcia.config import GarciaConfig
from repro.models.garcia.model import build_garcia
from repro.pipeline import prepare_scenario
from repro.serving import deploy_model
from repro.training import TrainerConfig
from repro.training.finetuner import train_garcia


@pytest.fixture(scope="module")
def trained_garcia(tiny_scenario):
    config = GarciaConfig(embedding_dim=16, num_gnn_layers=2, intention_levels=3, seed=0)
    model = build_garcia(
        tiny_scenario.dataset, tiny_scenario.graph, tiny_scenario.forest,
        tiny_scenario.head_tail, config,
    )
    train_garcia(
        model,
        tiny_scenario.splits.train,
        pretrain_config=TrainerConfig(num_epochs=1, learning_rate=5e-3, eval_every=0),
        finetune_config=TrainerConfig(num_epochs=4, learning_rate=5e-3, eval_every=0),
    )
    return model


class TestOfflineQuality:
    def test_garcia_beats_random_ranking(self, tiny_scenario, trained_garcia):
        evaluator = Evaluator()
        report = evaluator.evaluate(
            trained_garcia, tiny_scenario.splits.test, tiny_scenario.head_tail
        )
        assert report.overall.auc > 0.62
        assert report.head.auc > 0.6

    def test_predictions_deterministic_after_training(self, tiny_scenario, trained_garcia):
        batch = tiny_scenario.splits.test[:20]
        query_ids = np.array([i.query_id for i in batch])
        service_ids = np.array([i.service_id for i in batch])
        first = trained_garcia.predict(query_ids, service_ids)
        second = trained_garcia.predict(query_ids, service_ids)
        assert np.allclose(first, second)

    def test_scenario_reproducibility(self):
        config = SyntheticConfig(num_queries=60, num_services=20, num_interactions=800,
                                 total_page_views=4_000, seed=5)
        first = prepare_scenario(config)
        second = prepare_scenario(config)
        assert np.allclose(first.graph.adjacency, second.graph.adjacency)
        assert first.head_tail.head_query_ids == second.head_tail.head_query_ids


class TestServingIntegration:
    def test_deploy_and_rank(self, tiny_scenario, trained_garcia):
        pipeline = deploy_model(trained_garcia, tiny_scenario.dataset, top_k=5)
        tail_query = int(tiny_scenario.head_tail.tail_array()[0])
        ranked = pipeline.rank(tail_query)
        assert len(ranked) == 5
        assert len(set(ranked)) == 5

    def test_trained_model_ranks_relevant_services_higher(self, tiny_scenario, trained_garcia):
        """Averaged over tail queries, the oracle relevance of the trained
        model's top-5 exceeds the relevance of a random top-5."""
        pipeline = deploy_model(trained_garcia, tiny_scenario.dataset, top_k=5)
        oracle = tiny_scenario.oracle
        rng = np.random.default_rng(0)
        tail_queries = tiny_scenario.head_tail.tail_array()[:40]
        trained_relevance, random_relevance = [], []
        for query_id in tail_queries:
            ranked = pipeline.rank(int(query_id))
            trained_relevance.append(oracle.relevance[query_id, ranked].mean())
            random_pick = rng.choice(tiny_scenario.dataset.num_services, size=5, replace=False)
            random_relevance.append(oracle.relevance[query_id, random_pick].mean())
        assert np.mean(trained_relevance) > np.mean(random_relevance)

    def test_ab_test_on_trained_vs_untrained(self, tiny_scenario, trained_garcia):
        from repro.eval.ab_test import ABTestConfig, OnlineABTest
        from repro.models import LightGCN

        untrained = LightGCN(tiny_scenario.graph, embedding_dim=16, seed=3)
        baseline_pipeline = deploy_model(untrained, tiny_scenario.dataset, top_k=3)
        garcia_pipeline = deploy_model(trained_garcia, tiny_scenario.dataset, top_k=3)
        test = OnlineABTest(
            tiny_scenario.dataset, tiny_scenario.oracle,
            config=ABTestConfig(num_days=2, sessions_per_day=400, top_k=3, seed=1),
        )
        outcome = test.run(baseline_pipeline, garcia_pipeline)
        assert outcome.absolute_ctr_gain() > 0
