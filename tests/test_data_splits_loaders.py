"""Tests for chronological / head-tail splitting and the batch loader."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.loaders import BatchLoader, interactions_to_arrays
from repro.data.schema import Interaction
from repro.data.splits import chronological_split, head_tail_split, interactions_by_slice


class TestChronologicalSplit:
    def test_fractions_respected(self, tiny_dataset):
        splits = chronological_split(tiny_dataset, validation_fraction=0.1, test_fraction=0.2)
        total = tiny_dataset.num_interactions
        assert len(splits.validation) == pytest.approx(0.1 * total, abs=2)
        assert len(splits.test) == pytest.approx(0.2 * total, abs=2)
        assert sum(splits.sizes) == total

    def test_time_ordering_between_splits(self, tiny_dataset):
        splits = chronological_split(tiny_dataset, validation_fraction=0.1, test_fraction=0.1)
        latest_train = max(i.timestamp for i in splits.train)
        earliest_test = min(i.timestamp for i in splits.test)
        assert latest_train <= earliest_test

    def test_invalid_fractions_raise(self, tiny_dataset):
        with pytest.raises(ValueError):
            chronological_split(tiny_dataset, validation_fraction=0.6, test_fraction=0.5)
        with pytest.raises(ValueError):
            chronological_split(tiny_dataset, validation_fraction=-0.1)

    def test_zero_fractions_put_everything_in_train(self, tiny_dataset):
        splits = chronological_split(tiny_dataset, validation_fraction=0.0, test_fraction=0.0)
        assert len(splits.train) == tiny_dataset.num_interactions
        assert len(splits.validation) == 0 and len(splits.test) == 0


class TestHeadTailSplit:
    def test_head_queries_have_highest_traffic(self, tiny_dataset):
        split = head_tail_split(tiny_dataset, head_fraction=0.05)
        frequencies = tiny_dataset.query_frequencies()
        min_head = min(frequencies[q] for q in split.head_query_ids)
        max_tail = max(frequencies[q] for q in split.tail_query_ids)
        assert min_head >= max_tail

    def test_partition_is_exhaustive_and_disjoint(self, tiny_dataset):
        split = head_tail_split(tiny_dataset, head_fraction=0.1)
        assert split.head_query_ids.isdisjoint(split.tail_query_ids)
        assert split.num_head + split.num_tail == tiny_dataset.num_queries

    def test_head_count_variant(self, tiny_dataset):
        split = head_tail_split(tiny_dataset, head_count=7)
        assert split.num_head == 7

    def test_cannot_give_both_fraction_and_count(self, tiny_dataset):
        with pytest.raises(ValueError):
            head_tail_split(tiny_dataset, head_fraction=0.1, head_count=5)

    def test_invalid_fraction_raises(self, tiny_dataset):
        with pytest.raises(ValueError):
            head_tail_split(tiny_dataset, head_fraction=1.5)

    def test_membership_helpers(self, tiny_dataset):
        split = head_tail_split(tiny_dataset, head_count=3)
        head_id = next(iter(split.head_query_ids))
        tail_id = next(iter(split.tail_query_ids))
        assert split.is_head(head_id) and not split.is_tail(head_id)
        assert split.is_tail(tail_id) and not split.is_head(tail_id)
        assert len(split.head_array()) == 3

    def test_interactions_by_slice_partitions(self, tiny_dataset):
        split = head_tail_split(tiny_dataset, head_fraction=0.05)
        head, tail = interactions_by_slice(tiny_dataset.interactions, split)
        assert len(head) + len(tail) == tiny_dataset.num_interactions
        assert all(split.is_head(i.query_id) for i in head)
        assert all(split.is_tail(i.query_id) for i in tail)


class TestBatchLoader:
    def _interactions(self, count: int):
        return [
            Interaction(query_id=i % 7, service_id=i % 3, clicked=i % 2, timestamp=i % 5)
            for i in range(count)
        ]

    def test_batches_cover_everything_once(self):
        loader = BatchLoader(self._interactions(100), batch_size=32, shuffle=True, seed=0)
        seen = sum(len(batch) for batch in loader)
        assert seen == 100
        assert len(loader) == 4

    def test_drop_last(self):
        loader = BatchLoader(self._interactions(100), batch_size=32, drop_last=True)
        batches = list(loader)
        assert len(batches) == 3
        assert all(len(batch) == 32 for batch in batches)

    def test_shuffle_is_deterministic_per_seed(self):
        first = [b.query_ids.tolist() for b in BatchLoader(self._interactions(50), batch_size=10, seed=5)]
        second = [b.query_ids.tolist() for b in BatchLoader(self._interactions(50), batch_size=10, seed=5)]
        assert first == second

    def test_no_shuffle_preserves_order(self):
        loader = BatchLoader(self._interactions(10), batch_size=4, shuffle=False)
        first_batch = next(iter(loader))
        assert first_batch.query_ids.tolist() == [0, 1, 2, 3]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            BatchLoader(self._interactions(5), batch_size=0)

    def test_interactions_to_arrays_alignment(self):
        batch = interactions_to_arrays(self._interactions(9))
        assert len(batch) == 9
        assert batch.labels.dtype == np.float64
        assert batch.query_ids.shape == batch.service_ids.shape == batch.labels.shape

    def test_empty_interactions(self):
        batch = interactions_to_arrays([])
        assert len(batch) == 0

    def test_mismatched_batch_arrays_rejected(self):
        from repro.data.loaders import InteractionBatch

        with pytest.raises(ValueError):
            InteractionBatch(
                query_ids=np.zeros(3, dtype=np.int64),
                service_ids=np.zeros(2, dtype=np.int64),
                labels=np.zeros(3),
            )


@settings(max_examples=20, deadline=None)
@given(count=st.integers(1, 200), batch_size=st.integers(1, 64))
def test_loader_batch_sizes_property(count, batch_size):
    interactions = [
        Interaction(query_id=i, service_id=0, clicked=0, timestamp=0) for i in range(count)
    ]
    loader = BatchLoader(interactions, batch_size=batch_size, shuffle=True, seed=1)
    batches = list(loader)
    assert sum(len(b) for b in batches) == count
    assert all(len(b) <= batch_size for b in batches)
    # Every query id appears exactly once across the epoch.
    seen = sorted(q for b in batches for q in b.query_ids.tolist())
    assert seen == list(range(count))
