"""Tests for the asyncio-native request path.

Covers the :class:`~repro.serving.gateway.scheduler.AsyncBatchScheduler`
failure modes the loop front-end introduces (overload rejection under a
bounded queue, await-slot backpressure, cancellation mid-batch, deadline
misses, graceful shutdown with in-flight futures), the gateway's async
surface (``search_async`` parity with the sync wrapper, end-to-end deadline
and overload shedding, the lock-free loop-confined mode), and the sharded
tier's async scatter/gather across all three worker backends.
"""

import asyncio
import threading
from contextlib import nullcontext

import numpy as np
import pytest

from repro.serving.gateway import (
    AsyncBatchScheduler,
    DeadlineExceededError,
    OverloadError,
    ServingGateway,
    VersionedEmbeddingStore,
    clustered_embeddings,
)
from repro.serving.sharded import ShardedGateway


class FakeClock:
    """Manually advanced clock for deadline semantics without sleeping."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def clustered():
    return clustered_embeddings(200, 1500, 32, num_clusters=10, spread=0.2, seed=5)


def make_scheduler(max_batch_size=4, max_wait_s=0.010, **kwargs):
    clock = FakeClock()
    batches = []

    def executor(batch):
        batches.append([(pending.query_id, pending.k) for pending in batch])
        return [pending.query_id * 10 for pending in batch]

    scheduler = AsyncBatchScheduler(
        executor,
        max_batch_size=max_batch_size,
        max_wait_s=max_wait_s,
        clock=clock,
        **kwargs,
    )
    return scheduler, clock, batches


# --------------------------------------------------------------------- #
# AsyncBatchScheduler core semantics
# --------------------------------------------------------------------- #
class TestAsyncBatchScheduler:
    def test_poll_honours_batch_and_deadline_triggers(self):
        async def scenario():
            scheduler, clock, batches = make_scheduler(max_batch_size=3)
            handle = await scheduler.submit(1, 5)
            assert await scheduler.poll() == 0 and not handle.done
            clock.advance(0.011)  # past the oldest request's wait deadline
            assert await scheduler.poll() == 1 and handle.done
            assert await handle.wait() == 10
            handles = [await scheduler.submit(q, 5) for q in (2, 3, 4)]
            assert await scheduler.poll() == 3  # full batch, no deadline needed
            assert [h.result(0) for h in handles] == [20, 30, 40]
            assert batches == [[(1, 5)], [(2, 5), (3, 5), (4, 5)]]

        asyncio.run(scenario())

    def test_overload_rejection_under_bounded_queue(self):
        async def scenario():
            scheduler, _, _ = make_scheduler(
                max_batch_size=8, max_queue=2, overload="reject"
            )
            await scheduler.submit(0, 1)
            await scheduler.submit(1, 1)
            with pytest.raises(OverloadError):
                await scheduler.submit(2, 1)
            with pytest.raises(OverloadError):
                scheduler.submit_nowait(3, 1)
            assert scheduler.overload_rejections == 2
            assert scheduler.stats()["overload_rejections"] == 2.0
            # Draining frees the slots; admission recovers.
            await scheduler.flush()
            await scheduler.submit(4, 1)
            await scheduler.flush()

        asyncio.run(scenario())

    def test_await_slot_backpressure_policy(self):
        async def scenario():
            scheduler, _, _ = make_scheduler(
                max_batch_size=2, max_queue=2, overload="wait"
            )
            await scheduler.submit(1, 1)
            await scheduler.submit(2, 1)
            parked = asyncio.ensure_future(scheduler.submit(3, 1))
            await asyncio.sleep(0)
            assert not parked.done()  # queue full: the submitter is parked
            await scheduler.flush()  # dispatch frees slots and wakes it
            handle = await parked
            await scheduler.flush()
            assert handle.result(0) == 30
            assert scheduler.overload_rejections == 0

        asyncio.run(scenario())

    def test_admission_is_fifo_under_sustained_overload(self):
        """A woken waiter holds a reserved slot: fresh submitters park
        behind existing waiters instead of stealing the freed capacity."""

        async def scenario():
            scheduler, _, _ = make_scheduler(
                max_batch_size=2, max_wait_s=60.0, max_queue=2, overload="wait"
            )
            await scheduler.submit(1, 1)
            await scheduler.submit(2, 1)
            early = [asyncio.ensure_future(scheduler.submit(q, 1)) for q in (3, 4)]
            await asyncio.sleep(0)
            assert not any(task.done() for task in early)
            await scheduler.flush()  # frees 2 slots, reserved for the parked pair
            late = asyncio.ensure_future(scheduler.submit(5, 1))
            await asyncio.sleep(0)
            # The latecomer parked; the two early waiters got the slots.
            assert all(task.done() for task in early) and not late.done()
            assert [p.query_id for p in scheduler._queue] == [3, 4]
            await scheduler.flush()
            await asyncio.sleep(0)
            assert late.done()
            await scheduler.flush()
            assert scheduler._reserved == 0 and not scheduler._waiters

        asyncio.run(scenario())

    def test_cancelled_request_slot_is_not_scored(self):
        async def scenario():
            scheduler, _, batches = make_scheduler(max_batch_size=8)
            first = await scheduler.submit(1, 5)
            doomed = await scheduler.submit(2, 5)
            last = await scheduler.submit(3, 5)
            assert doomed.cancel()
            await scheduler.flush()
            # The cancelled slot never reached the executor.
            assert batches == [[(1, 5), (3, 5)]]
            assert first.result(0) == 10 and last.result(0) == 30
            assert doomed.cancelled and scheduler.cancelled_requests == 1
            with pytest.raises(asyncio.CancelledError):
                doomed.result(0)
            with pytest.raises(asyncio.CancelledError):
                await doomed.wait()

        asyncio.run(scenario())

    def test_deadline_miss_accounting(self):
        async def scenario():
            scheduler, clock, batches = make_scheduler(max_batch_size=8)
            missed = await scheduler.submit(1, 5, deadline_s=0.005)
            alive = await scheduler.submit(2, 5, deadline_s=10.0)
            clock.advance(0.006)  # past the first request's deadline
            await scheduler.flush()
            assert batches == [[(2, 5)]]  # the missed slot was shed unscored
            with pytest.raises(DeadlineExceededError):
                missed.result(0)
            assert alive.result(0) == 20
            assert scheduler.deadline_misses == 1
            assert scheduler.stats()["deadline_misses"] == 1.0

        asyncio.run(scenario())

    def test_graceful_shutdown_drains_in_flight_futures(self):
        async def scenario():
            scheduler, _, _ = make_scheduler(max_batch_size=8, max_wait_s=60.0)
            scheduler.start()
            handles = [await scheduler.submit(q, 1) for q in range(3)]
            assert not any(handle.done for handle in handles)
            await scheduler.stop()  # drain: every in-flight future completes
            assert [handle.result(0) for handle in handles] == [0, 10, 20]
            assert scheduler._drive_task is None

        asyncio.run(scenario())

    def test_stop_releases_parked_admission_waiters(self):
        """Shutdown must not strand submitters parked on a full queue: the
        queued work drains and the parked submits fail with CancelledError
        instead of hanging forever."""

        async def scenario():
            scheduler, _, _ = make_scheduler(
                max_batch_size=2, max_wait_s=60.0, max_queue=2, overload="wait"
            )
            queued = [await scheduler.submit(q, 1) for q in (1, 2)]
            parked = [asyncio.ensure_future(scheduler.submit(q, 1)) for q in (3, 4)]
            await asyncio.sleep(0)
            assert not any(task.done() for task in parked)
            await asyncio.wait_for(scheduler.stop(), timeout=2.0)
            assert [handle.result(0) for handle in queued] == [10, 20]
            for task in parked:
                assert task.done()
                with pytest.raises(asyncio.CancelledError):
                    task.result()
            assert scheduler.pending_count == 0 and not scheduler._waiters

        asyncio.run(scenario())

    def test_stop_drains_granted_but_unconsumed_slots(self):
        """A waiter woken with a reserved slot but not yet resumed when
        stop() runs must still be admitted and drained, not stranded."""

        async def scenario():
            scheduler, _, _ = make_scheduler(
                max_batch_size=2, max_wait_s=60.0, max_queue=2, overload="wait"
            )
            await scheduler.submit(1, 1)
            await scheduler.submit(2, 1)
            granted = asyncio.ensure_future(scheduler.submit(3, 1))
            await asyncio.sleep(0)  # parked behind the full queue
            await scheduler.flush()  # wakes the waiter: slot granted, no tick yet
            assert scheduler._reserved == 1 and not granted.done()
            await asyncio.wait_for(scheduler.stop(), timeout=2.0)
            handle = await granted
            assert handle.result(0) == 30
            assert scheduler._reserved == 0 and scheduler.pending_count == 0

        asyncio.run(scenario())

    def test_deadline_includes_admission_wait(self):
        """Time parked on a full queue counts against the deadline: a
        request admitted after its deadline already passed is shed."""

        async def scenario():
            scheduler, clock, batches = make_scheduler(
                max_batch_size=2, max_wait_s=60.0, max_queue=2, overload="wait"
            )
            await scheduler.submit(1, 1)
            await scheduler.submit(2, 1)
            parked = asyncio.ensure_future(scheduler.submit(3, 1, deadline_s=0.005))
            await asyncio.sleep(0)
            clock.advance(0.010)  # the park alone exceeds the deadline
            await scheduler.flush()  # admits the parked request...
            await asyncio.sleep(0)
            stale = await parked
            await scheduler.flush()  # ...and sheds it before scoring
            with pytest.raises(DeadlineExceededError):
                stale.result(0)
            assert all((3, 1) not in batch for batch in batches)
            assert scheduler.deadline_misses == 1

        asyncio.run(scenario())

    def test_drive_task_flushes_deadline_without_polling(self):
        async def scenario():
            done = asyncio.Event()

            def executor(batch):
                done.set()
                return [None] * len(batch)

            scheduler = AsyncBatchScheduler(
                executor, max_batch_size=64, max_wait_s=0.002
            )
            scheduler.start()
            handle = await scheduler.submit(0, 1)
            await asyncio.wait_for(done.wait(), timeout=2.0)
            assert await handle.wait() is None
            await scheduler.stop()

        asyncio.run(scenario())

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            AsyncBatchScheduler(lambda batch: [], max_queue=0)
        with pytest.raises(ValueError):
            AsyncBatchScheduler(lambda batch: [], overload="drop-newest")


# --------------------------------------------------------------------- #
# Gateway async surface
# --------------------------------------------------------------------- #
class TestAsyncGateway:
    @staticmethod
    def make_gateway(clustered, **kwargs):
        queries, services = clustered
        store = VersionedEmbeddingStore(queries, services, num_shards=4)
        defaults = dict(index="exact", top_k=10, max_batch_size=16)
        defaults.update(kwargs)
        return ServingGateway(store, **defaults)

    def test_search_async_matches_sync_wrapper(self, clustered):
        gateway = self.make_gateway(clustered)
        expected = gateway.rank(7)

        async def scenario():
            ranked = await gateway.rank_async(7)
            await gateway.stop_async()
            return ranked

        assert asyncio.run(scenario()) == expected
        gateway.close()

    def test_sync_path_routes_through_the_async_core(self, clustered):
        """One batching implementation: the sync wrapper's batches are
        dispatched (and counted) by the AsyncBatchScheduler."""
        gateway = self.make_gateway(clustered)
        gateway.search(3)
        core = gateway.scheduler.async_scheduler
        assert core.batches_dispatched == 1
        assert core.requests_dispatched == 1
        gateway.close()

    def test_search_async_coalesces_concurrent_requests(self, clustered):
        gateway = self.make_gateway(clustered, max_wait_s=0.001)

        async def scenario():
            results = await asyncio.gather(
                *(gateway.search_async(q) for q in (5, 9, 5, 9, 5))
            )
            await gateway.stop_async()
            return results

        results = asyncio.run(scenario())
        assert np.array_equal(results[0][0], results[2][0])
        assert gateway.summary()["requests"] == 5
        assert gateway.summary()["backend_queries"] == 2
        gateway.close()

    def test_deadline_shed_end_to_end(self, clustered):
        clock = FakeClock()
        queries, services = clustered
        store = VersionedEmbeddingStore(queries, services, clock=clock)
        gateway = ServingGateway(
            store, index="exact", default_deadline_s=0.005, clock=clock
        )
        pending = gateway.submit(1)
        clock.advance(0.006)
        gateway.flush()
        with pytest.raises(DeadlineExceededError):
            pending.result(0)
        assert gateway.telemetry.deadline_misses == 1
        assert gateway.telemetry.backend_queries == 0  # shed before scoring
        # A fresh request with a fresh deadline is served normally.
        assert len(gateway.rank(1)) == 10
        gateway.close()

    def test_overload_reject_end_to_end(self, clustered):
        gateway = self.make_gateway(
            clustered, max_batch_size=64, max_queue=2, overload="reject"
        )
        gateway.submit(0)
        gateway.submit(1)
        with pytest.raises(OverloadError):
            gateway.submit(2)
        assert gateway.telemetry.overload_rejections == 1
        gateway.flush()
        assert gateway.summary()["queue_depth_max"] == 2.0
        gateway.close()

    def test_caller_cancellation_drops_the_request_unscored(self, clustered):
        gateway = self.make_gateway(clustered, max_wait_s=60.0)

        async def scenario():
            task = asyncio.ensure_future(gateway.search_async(5))
            await asyncio.sleep(0)  # admitted, parked behind the 60s deadline
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            await gateway.stop_async()  # drains the queue: slot is skipped

        asyncio.run(scenario())
        assert gateway.scheduler.async_scheduler.cancelled_requests == 1
        assert gateway.telemetry.backend_queries == 0
        assert gateway.telemetry.cancelled_requests == 1
        gateway.close()

    def test_loop_confined_mode_drops_locks_and_cache_hit_never_blocks(
        self, clustered
    ):
        locked = self.make_gateway(clustered)
        assert isinstance(locked.cache._lock, type(threading.Lock()))
        locked.close()
        gateway = self.make_gateway(clustered, loop_confined=True)
        assert isinstance(gateway.cache._lock, nullcontext)
        assert isinstance(gateway.telemetry._lock, nullcontext)

        async def scenario():
            first, _ = await gateway.search_async(3)

            def exploding_backend(*args, **kwargs):
                raise AssertionError("cache hit must not reach the backend")

            gateway._search_backend = exploding_backend
            gateway._search_backend_async = exploding_backend
            # The hit resolves inline on the loop: no backend, no executor
            # hop, no lock — a bounded await proves it cannot block.
            second, _ = await asyncio.wait_for(gateway.search_async(3), timeout=2.0)
            await gateway.stop_async()
            return first, second

        first, second = asyncio.run(scenario())
        assert np.array_equal(first, second)
        assert gateway.cache.hits == 1
        gateway.close()

    def test_cpu_executor_offloads_scoring_off_the_loop(self, clustered):
        gateway = self.make_gateway(clustered, cpu_executor="thread")
        reference = self.make_gateway(clustered)
        expected = reference.rank(11)
        reference.close()

        async def scenario():
            ranked = await gateway.rank_async(11)
            await gateway.stop_async()
            return ranked

        assert asyncio.run(scenario()) == expected
        gateway.close()

    def test_rejects_bogus_cpu_executor(self, clustered):
        with pytest.raises(ValueError):
            self.make_gateway(clustered, cpu_executor="gpu")


# --------------------------------------------------------------------- #
# Sharded tier: async scatter/gather
# --------------------------------------------------------------------- #
class TestShardedAsync:
    @staticmethod
    def make_sharded(clustered, workers, **kwargs):
        queries, services = clustered
        store = VersionedEmbeddingStore(queries, services, num_shards=4)
        defaults = dict(index="exact", top_k=10, max_batch_size=16,
                        cache_capacity=0)
        defaults.update(kwargs)
        return ShardedGateway(store, workers=workers, **defaults)

    @pytest.mark.parametrize("workers", ["serial", "thread"])
    def test_async_scatter_gather_matches_sync(self, clustered, workers):
        gateway = self.make_sharded(clustered, workers)
        expected = gateway.rank_batch(range(12), 10)

        async def scenario():
            ranked = await asyncio.gather(
                *(gateway.rank_async(q) for q in range(12))
            )
            await gateway.stop_async()
            return ranked

        assert asyncio.run(scenario()) == expected
        gateway.close()

    def test_process_pool_async_pipe_readers_match_serial(self, clustered):
        """The loop-reader framed-pipe cycle returns exactly what the
        blocking cycle returns — per shard, per version."""
        serial = self.make_sharded(clustered, "serial")
        expected = serial.rank_batch(range(8), 10)
        serial.close()
        gateway = self.make_sharded(clustered, "process")

        async def scenario():
            ranked = await asyncio.gather(
                *(gateway.rank_async(q) for q in range(8))
            )
            await gateway.stop_async()
            return ranked

        assert asyncio.run(scenario()) == expected
        # The sync path still works on the same pool afterwards.
        assert gateway.rank_batch(range(8), 10) == expected
        gateway.close()

    def test_async_search_survives_hot_swap(self, clustered):
        queries, services = clustered
        gateway = self.make_sharded(clustered, "serial")

        async def scenario():
            before = await gateway.rank_async(0)
            gateway.hot_swap(queries * 1.1, services * 1.1)
            after = await gateway.rank_async(0)
            await gateway.stop_async()
            return before, after

        before, after = asyncio.run(scenario())
        assert before == after  # scaling both tables preserves the ranking
        assert gateway.store.version == 1
        gateway.close()
