"""Tests for the gateway-backed A/B tier (``repro.serving.abtest``).

Covers the deterministic bucket router (hash stability across instances
and salts, split-fraction accuracy, string ids, arm routing), the
per-bucket telemetry tags threaded through the scheduler/gateway layers
(tagged request/shed attribution, sums-to-totals decomposition, A/A
separability on one shared gateway), and the end-to-end
:class:`OnlineABExperiment` (joint CTR + cost report, seed determinism,
single-process vs sharded arm parity, async/sync ranking parity).
"""

import asyncio

import numpy as np
import pytest

from repro.serving.abtest import (
    ABExperimentConfig,
    BucketRouter,
    OnlineABExperiment,
    close_arms,
)
from repro.serving.gateway import (
    AsyncBatchScheduler,
    GatewayTelemetry,
    OverloadError,
    ServingGateway,
    VersionedEmbeddingStore,
)
from repro.serving.sharded import ShardedGateway

DIM = 8
NUM_QUERIES = 40
NUM_SERVICES = 30
GOOD_SERVICES = np.arange(NUM_SERVICES // 2)  # the high-click half


class StubDataset:
    """Duck-typed stand-in: uniform query traffic over NUM_QUERIES ids."""

    num_queries = NUM_QUERIES

    def query_frequencies(self):
        return np.ones(NUM_QUERIES)


class StubOracle:
    """Clicks love the first half of the catalogue, shun the second."""

    def click_probability(self, query_ids, service_ids):
        return np.where(np.isin(service_ids, GOOD_SERVICES), 0.8, 0.05)

    def conversion_probability(self, query_ids, service_ids):
        return np.full(len(np.asarray(service_ids)), 0.5)


def make_embeddings(rank_good_first: bool, seed: int = 0):
    """Queries on axis 0; services scored high on the chosen half."""
    rng = np.random.default_rng(seed)
    queries = np.tile(np.eye(DIM)[0], (NUM_QUERIES, 1))
    services = rng.normal(0.0, 0.01, size=(NUM_SERVICES, DIM))
    services[:, 0] = 0.0
    favoured = GOOD_SERVICES if rank_good_first else np.arange(
        NUM_SERVICES // 2, NUM_SERVICES)
    services[favoured, 0] = 1.0
    return queries, services


def make_gateway(rank_good_first: bool, num_shards: int = 1, seed: int = 0,
                 **kwargs):
    queries, services = make_embeddings(rank_good_first, seed=seed)
    store = VersionedEmbeddingStore(queries, services, num_shards=max(1, num_shards))
    if num_shards > 1:
        return ShardedGateway(store, index="exact", workers="serial",
                              top_k=5, cache_capacity=0, **kwargs)
    return ServingGateway(store, index="exact", top_k=5, cache_capacity=0,
                          **kwargs)


def make_router(control_gateway=None, treatment_gateway=None,
                split=0.5, salt=7):
    control_gateway = control_gateway or make_gateway(rank_good_first=False)
    treatment_gateway = treatment_gateway or make_gateway(rank_good_first=True)
    return BucketRouter(
        {"control": 1.0 - split, "treatment": split},
        arms={"control": control_gateway, "treatment": treatment_gateway},
        salt=salt,
    )


def run_experiment(router, **config_kwargs) -> tuple:
    defaults = dict(num_days=2, sessions_per_day=150, top_k=5,
                    rate_qps=None, seed=3)
    defaults.update(config_kwargs)
    experiment = OnlineABExperiment(StubDataset(), StubOracle(), router,
                                    ABExperimentConfig(**defaults))
    report = experiment.run()
    return experiment, report


# --------------------------------------------------------------------- #
# BucketRouter
# --------------------------------------------------------------------- #
class TestBucketRouter:
    def test_split_validation(self):
        with pytest.raises(ValueError):
            BucketRouter({})
        with pytest.raises(ValueError):
            BucketRouter({"a": 0.5, "b": 0.6})
        with pytest.raises(ValueError):
            BucketRouter({"a": 1.2, "b": -0.2})

    def test_assignment_deterministic_across_instances(self):
        ids = np.arange(5_000)
        first = BucketRouter({"control": 0.9, "treatment": 0.1}, salt=42)
        second = BucketRouter({"control": 0.9, "treatment": 0.1}, salt=42)
        np.testing.assert_array_equal(first.assign_indices(ids),
                                      second.assign_indices(ids))

    def test_salt_rebuckets_the_population(self):
        ids = np.arange(5_000)
        base = BucketRouter({"a": 0.5, "b": 0.5}, salt=1).assign_indices(ids)
        other = BucketRouter({"a": 0.5, "b": 0.5}, salt=2).assign_indices(ids)
        assert not np.array_equal(base, other)
        # Roughly half the population moves under an independent re-split.
        moved = (base != other).mean()
        assert 0.3 < moved < 0.7

    def test_split_fractions_respected(self):
        ids = np.arange(50_000)
        router = BucketRouter({"control": 0.9, "treatment": 0.1}, salt=0)
        counts = np.bincount(router.assign_indices(ids), minlength=2)
        assert counts[0] / len(ids) == pytest.approx(0.9, abs=0.01)
        assert counts[1] / len(ids) == pytest.approx(0.1, abs=0.01)

    def test_scalar_assign_matches_vectorised(self):
        router = BucketRouter({"a": 0.3, "b": 0.7}, salt=5)
        ids = list(range(64))
        assert [router.assign(i) for i in ids] == router.assign_many(ids)

    def test_string_session_ids_hash_deterministically(self):
        router = BucketRouter({"a": 0.5, "b": 0.5}, salt="exp-42")
        users = [f"user-{i}" for i in range(200)]
        assert router.assign_many(users) == router.assign_many(users)
        assert {"a", "b"} == set(router.assign_many(users))

    def test_route_returns_bucket_and_arm(self):
        control, treatment = object(), object()
        router = BucketRouter({"control": 0.5, "treatment": 0.5},
                              arms={"control": control, "treatment": treatment},
                              salt=3)
        bucket, arm = router.route(123)
        assert arm is (control if bucket == "control" else treatment)
        with pytest.raises(KeyError):
            router.arm("nope")

    def test_arms_must_match_split_buckets(self):
        with pytest.raises(ValueError):
            BucketRouter({"control": 0.5, "treatment": 0.5},
                         arms={"control": object()})

    def test_router_without_arms_refuses_routing(self):
        router = BucketRouter({"a": 1.0})
        with pytest.raises(ValueError):
            router.arm("a")
        assert router.unique_arms() == []


# --------------------------------------------------------------------- #
# Per-bucket telemetry tags (scheduler + gateway layers)
# --------------------------------------------------------------------- #
class TestBucketTelemetryTags:
    def test_tagged_sync_requests_land_in_bucket_rows(self):
        gateway = make_gateway(rank_good_first=True)
        try:
            for query_id in range(6):
                gateway.search(query_id, tag="control" if query_id % 2 else "treatment")
            rows = {row["bucket"]: row for row in gateway.telemetry.bucket_rows()}
            assert rows["control"]["requests"] == 3.0
            assert rows["treatment"]["requests"] == 3.0
            assert sum(row["requests"] for row in rows.values()) == (
                gateway.summary()["requests"]
            )
            assert np.isfinite(rows["control"]["p99_ms"])
        finally:
            gateway.close()

    def test_untagged_requests_keep_bucket_rows_empty(self):
        gateway = make_gateway(rank_good_first=True)
        try:
            gateway.search(0)
            assert gateway.telemetry.bucket_rows() == []
            assert gateway.summary()["requests"] == 1.0
        finally:
            gateway.close()

    def test_aa_test_on_one_gateway_separates_tags(self):
        gateway = make_gateway(rank_good_first=True)
        try:

            async def drive():
                await asyncio.gather(*[
                    gateway.search_async(i, tag="a" if i < 4 else "b")
                    for i in range(10)
                ])
                await gateway.stop_async()

            asyncio.run(drive())
            rows = {row["bucket"]: row for row in gateway.telemetry.bucket_rows()}
            assert rows["a"]["requests"] == 4.0
            assert rows["b"]["requests"] == 6.0
        finally:
            gateway.close()

    def test_overload_and_deadline_shed_attributed_to_tag(self):
        clock_now = [0.0]
        telemetry = GatewayTelemetry(clock=lambda: clock_now[0])
        scheduler = AsyncBatchScheduler(
            lambda batch: [0 for _ in batch],
            max_batch_size=8, max_wait_s=0.01, max_queue=2,
            overload="reject", clock=lambda: clock_now[0],
            telemetry=telemetry,
        )

        async def drive():
            await scheduler.submit(0, 5, deadline_s=0.05, tag="treatment")
            await scheduler.submit(1, 5, tag="control")
            with pytest.raises(OverloadError):
                await scheduler.submit(2, 5, tag="treatment")
            clock_now[0] = 1.0  # expire the first request's deadline
            await scheduler.flush()

        asyncio.run(drive())
        rows = {row["bucket"]: row for row in telemetry.bucket_rows()}
        # Answered-request latency is recorded by the gateway layer; at the
        # raw scheduler level only the shed events carry tags — and both
        # land on the bucket that actually suffered them.
        assert rows["treatment"]["overload_rejections"] == 1.0
        assert rows["treatment"]["deadline_misses"] == 1.0
        assert "control" not in rows
        summary = telemetry.summary()
        assert summary["overload_rejections"] == 1.0
        assert summary["deadline_misses"] == 1.0

    def test_cancelled_requests_attributed_to_tag(self):
        telemetry = GatewayTelemetry()
        scheduler = AsyncBatchScheduler(
            lambda batch: [0 for _ in batch],
            max_batch_size=8, max_wait_s=0.01, telemetry=telemetry,
        )

        async def drive():
            doomed = await scheduler.submit(0, 5, tag="treatment")
            await scheduler.submit(1, 5, tag="control")
            doomed.cancel()
            await scheduler.flush()

        asyncio.run(drive())
        rows = {row["bucket"]: row for row in telemetry.bucket_rows()}
        assert rows["treatment"]["cancelled_requests"] == 1.0
        assert telemetry.summary()["cancelled_requests"] == 1.0


# --------------------------------------------------------------------- #
# OnlineABExperiment end-to-end
# --------------------------------------------------------------------- #
class TestOnlineABExperiment:
    def test_joint_report_quality_and_cost(self):
        router = make_router(split=0.5)
        try:
            _, report = run_experiment(router)
            assert len(report.days) == 2
            # Both buckets received traffic and produced impressions.
            assert report.sessions["control"] > 0
            assert report.sessions["treatment"] > 0
            for bucket in report.buckets:
                assert all(day.impressions > 0 for day in report.daily[bucket])
            # The constructed quality gap shows up as a positive CTR delta.
            assert all(value > 0 for value in report.ctr_improvement())
            assert all(np.isfinite(value) for value in report.ctr_improvement())
            # Cost rows: one per bucket, finite latency, routed counts match.
            cost = {row["bucket"]: row for row in report.cost_rows()}
            assert set(cost) == {"control", "treatment"}
            for bucket, row in cost.items():
                assert row["requests"] == report.sessions[bucket]
                assert np.isfinite(row["p99_ms"])
                assert row["qps"] > 0
            rows = report.joint_rows()
            assert len(rows) == 2 and "ctr_improvement_pct" in rows[0]
        finally:
            close_arms(router)

    def test_deterministic_at_one_seed(self):
        outcomes = []
        for _ in range(2):
            router = make_router(split=0.5)
            try:
                _, report = run_experiment(router)
                outcomes.append((
                    [(m.impressions, m.clicks, m.conversions)
                     for bucket in report.buckets for m in report.daily[bucket]],
                    dict(report.sessions),
                ))
            finally:
                close_arms(router)
        assert outcomes[0] == outcomes[1]

    def test_telemetry_sums_to_gateway_totals(self):
        router = make_router(split=0.3)
        try:
            _, report = run_experiment(router)
            bucket_requests = sum(row["requests"] for row in report.cost)
            gateway_requests = sum(
                gateway.summary()["requests"] for gateway in router.unique_arms()
            )
            assert bucket_requests == gateway_requests
            assert bucket_requests == sum(report.sessions.values())
        finally:
            close_arms(router)

    def test_shared_gateway_aa_experiment(self):
        gateway = make_gateway(rank_good_first=True)
        router = BucketRouter({"control": 0.5, "treatment": 0.5},
                              arms={"control": gateway, "treatment": gateway},
                              salt=11)
        try:
            _, report = run_experiment(router)
            cost = {row["bucket"]: row for row in report.cost_rows()}
            assert set(cost) == {"control", "treatment"}
            assert cost["control"]["requests"] == report.sessions["control"]
            assert cost["treatment"]["requests"] == report.sessions["treatment"]
            # One shared arm: the telemetry decomposes one gateway's totals.
            assert (cost["control"]["requests"] + cost["treatment"]["requests"]
                    == gateway.summary()["requests"])
        finally:
            gateway.close()

    def test_sharded_arms_reproduce_single_process_ctr(self):
        # Exact per-shard scans + exact merge are bit-identical to the
        # single-process index, and clicks are seeded per session — so the
        # whole CTR ledger must match between deployments.
        ledgers = []
        for num_shards in (1, 3):
            router = make_router(
                control_gateway=make_gateway(False, num_shards=num_shards),
                treatment_gateway=make_gateway(True, num_shards=num_shards),
            )
            try:
                _, report = run_experiment(router)
                ledgers.append([
                    (m.impressions, m.clicks, m.conversions)
                    for bucket in report.buckets for m in report.daily[bucket]
                ])
            finally:
                close_arms(router)
        assert ledgers[0] == ledgers[1]

    def test_poisson_paced_replay_matches_burst_ctr(self):
        # Open-loop pacing changes *when* requests land, not what they
        # return or how sessions click — the quality ledger is identical.
        ledgers = []
        for rate_qps in (None, 5_000.0):
            router = make_router(split=0.5)
            try:
                _, report = run_experiment(router, num_days=1,
                                           sessions_per_day=80,
                                           rate_qps=rate_qps)
                ledgers.append([
                    (m.impressions, m.clicks, m.conversions)
                    for bucket in report.buckets for m in report.daily[bucket]
                ])
            finally:
                close_arms(router)
        assert ledgers[0] == ledgers[1]

    def test_async_routing_matches_sync_ranking(self):
        gateway = make_gateway(rank_good_first=True)
        try:

            async def ranked_async():
                ids, _ = await gateway.search_async(3, k=5, tag="treatment")
                await gateway.stop_async()
                return list(ids)

            async_ids = asyncio.run(ranked_async())
            sync_ids, _ = gateway.search(3, k=5)
            assert async_ids == list(sync_ids)
        finally:
            gateway.close()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ABExperimentConfig(num_days=0)
        with pytest.raises(ValueError):
            ABExperimentConfig(rate_qps=-1.0)
        with pytest.raises(ValueError):
            ABExperimentConfig(top_k=9)  # beyond the default position bias

    def test_experiment_requires_arms_and_known_roles(self):
        armless = BucketRouter({"control": 0.5, "treatment": 0.5})
        with pytest.raises(ValueError):
            OnlineABExperiment(StubDataset(), StubOracle(), armless)
        router = make_router()
        try:
            with pytest.raises(ValueError):
                OnlineABExperiment(
                    StubDataset(), StubOracle(), router,
                    ABExperimentConfig(control="nope"),
                )
        finally:
            close_arms(router)

    def test_payload_and_summary_are_json_ready(self):
        import json

        router = make_router(split=0.5)
        try:
            _, report = run_experiment(router, num_days=1, sessions_per_day=60)
            payload = report.as_payload()
            json.dumps(payload)  # must round-trip without numpy scalars
            assert payload["buckets"] == ["control", "treatment"]
            assert len(payload["joint_rows"]) == 1
            assert len(payload["cost_rows"]) == 2
            assert payload["sessions"]["control"] + payload["sessions"]["treatment"] == 60
            summary = report.summary()
            assert summary["sessions_total"] == 60.0
            assert np.isfinite(summary["absolute_ctr_gain_pp"])
            assert summary["replay_wall_s"] > 0
        finally:
            close_arms(router)

    def test_shed_sessions_produce_no_impressions(self):
        # A deadline of zero sheds every session before scoring: quality
        # collapses to zero impressions while the shed counters fill — the
        # serving-cost/quality coupling the joint report exists to expose.
        router = make_router(split=0.5)
        try:
            _, report = run_experiment(router, num_days=1, sessions_per_day=40,
                                       deadline_s=0.0)
            assert sum(report.shed.values()) == 40
            for bucket in report.buckets:
                assert all(day.impressions == 0 for day in report.daily[bucket])
            cost = {row["bucket"]: row for row in report.cost_rows()}
            assert sum(row["deadline_misses"] for row in cost.values()) == 40
        finally:
            close_arms(router)
