"""Unit tests for the core Tensor autograd engine."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradient_check, is_grad_enabled, no_grad


class TestTensorBasics:
    def test_construction_from_list(self):
        tensor = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert tensor.shape == (2, 2)
        assert tensor.data.dtype == np.float64
        assert not tensor.requires_grad

    def test_construction_preserves_requires_grad(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        assert tensor.requires_grad
        assert tensor.grad is None

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_detach_breaks_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad

    def test_len_and_size(self):
        tensor = Tensor(np.zeros((4, 5)))
        assert len(tensor) == 4
        assert tensor.size == 20
        assert tensor.ndim == 2

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_zeros_ones_randn_constructors(self, rng):
        assert np.all(Tensor.zeros((2, 3)).data == 0.0)
        assert np.all(Tensor.ones((2, 3)).data == 1.0)
        random_tensor = Tensor.randn((100,), scale=2.0, rng=rng)
        assert random_tensor.shape == (100,)


class TestBackwardMechanics:
    def test_backward_on_non_scalar_requires_grad_argument(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = a * 3.0
        with pytest.raises(RuntimeError):
            b.backward()

    def test_backward_without_requires_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_gradient_accumulates_across_backward_calls(self):
        a = Tensor([2.0], requires_grad=True)
        (a * 3.0).sum().backward()
        (a * 3.0).sum().backward()
        assert a.grad == pytest.approx(np.array([6.0]))

    def test_zero_grad_resets(self):
        a = Tensor([2.0], requires_grad=True)
        (a * 3.0).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph_gradient(self):
        # f = (a*2) + (a*3) -> df/da = 5
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0 + a * 3.0).sum().backward()
        assert a.grad == pytest.approx(np.array([5.0]))

    def test_reused_node_deep_chain(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = a * 2.0
        c = b + b
        c.sum().backward()
        assert np.allclose(a.grad, 4.0)

    def test_no_grad_context(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            b = a * 2.0
        assert is_grad_enabled()
        assert not b.requires_grad


class TestArithmeticGradients:
    def test_add_broadcasting(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        gradient_check(lambda inp: (inp[0] + inp[1]).sum(), [a, b])

    def test_sub_and_rsub(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        gradient_check(lambda inp: (5.0 - inp[0]).sum(), [a])
        gradient_check(lambda inp: (inp[0] - 2.0).sum(), [a])

    def test_mul_broadcasting(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(1, 3)), requires_grad=True)
        gradient_check(lambda inp: (inp[0] * inp[1]).sum(), [a, b])

    def test_division(self, rng):
        a = Tensor(rng.normal(size=(4,)) + 3.0, requires_grad=True)
        b = Tensor(rng.normal(size=(4,)) + 3.0, requires_grad=True)
        gradient_check(lambda inp: (inp[0] / inp[1]).sum(), [a, b])

    def test_neg_and_pow(self, rng):
        a = Tensor(np.abs(rng.normal(size=(5,))) + 0.5, requires_grad=True)
        gradient_check(lambda inp: (-inp[0]).sum(), [a])
        gradient_check(lambda inp: (inp[0] ** 3).sum(), [a])
        gradient_check(lambda inp: inp[0].sqrt().sum(), [a])

    def test_scalar_values_match_numpy(self):
        a = Tensor([1.0, 2.0, 3.0])
        assert np.allclose((a + 1).data, [2, 3, 4])
        assert np.allclose((2 * a).data, [2, 4, 6])
        assert np.allclose((a / 2).data, [0.5, 1.0, 1.5])
        assert np.allclose((1.0 / a).data, [1.0, 0.5, 1 / 3])


class TestMatmulGradients:
    def test_matrix_matrix(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        gradient_check(lambda inp: (inp[0] @ inp[1]).sum(), [a, b])

    def test_matrix_vector(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        v = Tensor(rng.normal(size=(4,)), requires_grad=True)
        gradient_check(lambda inp: (inp[0] @ inp[1]).sum(), [a, v])

    def test_vector_vector(self, rng):
        a = Tensor(rng.normal(size=(4,)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        gradient_check(lambda inp: inp[0] @ inp[1], [a, b])

    def test_vector_matrix(self, rng):
        v = Tensor(rng.normal(size=(3,)), requires_grad=True)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gradient_check(lambda inp: (inp[0] @ inp[1]).sum(), [v, a])


class TestShapeOps:
    def test_transpose_gradient(self, rng):
        a = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        gradient_check(lambda inp: (inp[0].transpose() * 2.0).sum(), [a])
        assert a.T.shape == (5, 2)

    def test_reshape_gradient(self, rng):
        a = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        gradient_check(lambda inp: inp[0].reshape(3, 4).sum(axis=0).sum(), [a])
        assert a.reshape((4, 3)).shape == (4, 3)

    def test_getitem_gradient(self, rng):
        a = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        gradient_check(lambda inp: inp[0][1:4].sum(), [a])
        gradient_check(lambda inp: inp[0][:, 1].sum(), [a])

    def test_getitem_repeated_index_accumulates(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        b = a[np.array([0, 0, 1])]
        b.sum().backward()
        assert np.allclose(a.grad, [2.0, 1.0, 0.0, 0.0])

    def test_index_select_gradient(self, rng):
        a = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        gradient_check(lambda inp: inp[0].index_select([0, 2, 2, 5]).sum(), [a])

    def test_index_select_out_of_order(self):
        a = Tensor(np.arange(12.0).reshape(4, 3))
        out = a.index_select([3, 0])
        assert np.allclose(out.data, [[9, 10, 11], [0, 1, 2]])

    def test_concat_gradient(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        gradient_check(lambda inp: Tensor.concat([inp[0], inp[1]], axis=0).sum(), [a, b])

    def test_concat_axis1_gradient(self, rng):
        a = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gradient_check(lambda inp: (Tensor.concat([inp[0], inp[1]], axis=1) ** 2).sum(), [a, b])

    def test_stack_gradient(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        gradient_check(lambda inp: Tensor.stack([inp[0], inp[1]], axis=0).sum(), [a, b])


class TestReductions:
    def test_sum_axis_gradients(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gradient_check(lambda inp: inp[0].sum(), [a])
        gradient_check(lambda inp: inp[0].sum(axis=0).sum(), [a])
        gradient_check(lambda inp: inp[0].sum(axis=1, keepdims=True).sum(), [a])

    def test_mean_axis_gradients(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gradient_check(lambda inp: inp[0].mean(), [a])
        gradient_check(lambda inp: inp[0].mean(axis=1).sum(), [a])

    def test_max_gradient_unique_max(self):
        a = Tensor(np.array([[1.0, 5.0], [3.0, 2.0]]), requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [[0, 1], [0, 0]])

    def test_max_axis_value(self):
        a = Tensor(np.array([[1.0, 5.0], [3.0, 2.0]]))
        assert np.allclose(a.max(axis=1).data, [5.0, 3.0])


class TestNonLinearities:
    def test_relu_gradient(self, rng):
        a = Tensor(rng.normal(size=(10,)), requires_grad=True)
        gradient_check(lambda inp: inp[0].relu().sum(), [a])

    def test_tanh_sigmoid_exp_log_gradients(self, rng):
        a = Tensor(rng.normal(size=(6,)), requires_grad=True)
        positive = Tensor(np.abs(rng.normal(size=(6,))) + 0.5, requires_grad=True)
        gradient_check(lambda inp: inp[0].tanh().sum(), [a])
        gradient_check(lambda inp: inp[0].sigmoid().sum(), [a])
        gradient_check(lambda inp: inp[0].exp().sum(), [a])
        gradient_check(lambda inp: inp[0].log().sum(), [positive])

    def test_clip_gradient_masks_out_of_range(self):
        a = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        a.clip(0.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_relu_value(self):
        assert np.allclose(Tensor([-1.0, 2.0]).relu().data, [0.0, 2.0])
