"""Tests for dataset schemas: validation, accessors and statistics."""

import numpy as np
import pytest

from repro.data.schema import (
    DatasetStatistics,
    Intention,
    Interaction,
    Query,
    Service,
    ServiceSearchDataset,
)


def _minimal_dataset() -> ServiceSearchDataset:
    intentions = [
        Intention(intention_id=0, level=1, parent_id=None, children=[1]),
        Intention(intention_id=1, level=2, parent_id=0),
    ]
    queries = [
        Query(query_id=0, intention_id=1, frequency=90, attributes={"city": 1}),
        Query(query_id=1, intention_id=1, frequency=10, attributes={"city": 2}),
    ]
    services = [Service(service_id=0, intention_id=1, mau=1000, rating=4)]
    interactions = [
        Interaction(query_id=0, service_id=0, clicked=1, timestamp=0),
        Interaction(query_id=1, service_id=0, clicked=0, timestamp=1),
    ]
    return ServiceSearchDataset(
        name="mini", queries=queries, services=services,
        intentions=intentions, interactions=interactions,
    )


class TestSchemaBasics:
    def test_intention_root_and_leaf_flags(self):
        dataset = _minimal_dataset()
        assert dataset.intentions[0].is_root and not dataset.intentions[0].is_leaf
        assert dataset.intentions[1].is_leaf and not dataset.intentions[1].is_root

    def test_service_quality_score_increases_with_mau_and_rating(self):
        low = Service(service_id=0, intention_id=0, mau=10, rating=1)
        high = Service(service_id=1, intention_id=0, mau=1_000_000, rating=5)
        assert high.quality_score() > low.quality_score()

    def test_counts_and_accessors(self):
        dataset = _minimal_dataset()
        assert dataset.num_queries == 2
        assert dataset.num_services == 1
        assert dataset.num_intentions == 2
        assert dataset.num_interactions == 2
        assert dataset.query_by_id(1).frequency == 10
        assert dataset.service_by_id(0).mau == 1000
        assert dataset.intention_by_id(0).level == 1

    def test_query_frequencies_array(self):
        assert np.allclose(_minimal_dataset().query_frequencies(), [90, 10])

    def test_interaction_array_columns(self):
        array = _minimal_dataset().interaction_array()
        assert array.shape == (2, 5)
        assert array[0, 2] == 1  # clicked flag of the first interaction

    def test_empty_interaction_array(self):
        dataset = _minimal_dataset()
        dataset.interactions = []
        assert dataset.interaction_array().shape == (0, 5)


class TestValidation:
    def test_valid_dataset_passes(self):
        _minimal_dataset().validate()

    def test_unknown_intention_reference_fails(self):
        dataset = _minimal_dataset()
        dataset.queries[0].intention_id = 99
        with pytest.raises(ValueError):
            dataset.validate()

    def test_non_contiguous_query_ids_fail(self):
        dataset = _minimal_dataset()
        dataset.queries[1].query_id = 5
        with pytest.raises(ValueError):
            dataset.validate()

    def test_interaction_with_unknown_service_fails(self):
        dataset = _minimal_dataset()
        dataset.interactions.append(Interaction(query_id=0, service_id=9, clicked=1, timestamp=0))
        with pytest.raises(ValueError):
            dataset.validate()

    def test_non_binary_click_fails(self):
        dataset = _minimal_dataset()
        dataset.interactions[0].clicked = 3
        with pytest.raises(ValueError):
            dataset.validate()


class TestStatistics:
    def test_statistics_with_explicit_head(self):
        dataset = _minimal_dataset()
        stats = dataset.statistics(head_query_ids=[0], splits=(2, 0, 0))
        assert stats.head_query_fraction == pytest.approx(0.5)
        assert stats.head_pv_fraction == pytest.approx(0.9)
        assert stats.tail_pv_fraction == pytest.approx(0.1)
        assert stats.num_train == 2

    def test_statistics_default_head_is_top_one_percent(self):
        dataset = _minimal_dataset()
        stats = dataset.statistics()
        # With 2 queries, the top 1 % rounds up to a single head query.
        assert stats.head_query_fraction == pytest.approx(0.5)

    def test_statistics_as_row_keys(self):
        row = _minimal_dataset().statistics().as_row()
        for key in ("dataset", "queries_head_pct", "pv_head_pct", "train", "test"):
            assert key in row

    def test_dataclass_round_numbers(self):
        stats = DatasetStatistics(
            name="x", num_queries=10, num_services=5, num_interactions=100,
            head_query_fraction=0.0123, tail_query_fraction=0.9877,
            head_pv_fraction=0.91111, tail_pv_fraction=0.08889,
            num_train=80, num_validation=10, num_test=10,
        )
        row = stats.as_row()
        assert row["queries_head_pct"] == pytest.approx(1.23)
        assert row["pv_head_pct"] == pytest.approx(91.11)
