"""Property-based tests (hypothesis) for the autograd engine invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, functional as F, gradient_check

finite_floats = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False)


def small_matrices(max_rows: int = 4, max_cols: int = 4):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, max_rows), st.integers(1, max_cols)),
        elements=finite_floats,
    )


@settings(max_examples=25, deadline=None)
@given(small_matrices())
def test_add_commutes(matrix):
    a, b = Tensor(matrix), Tensor(matrix * 0.5 + 1.0)
    assert np.allclose((a + b).data, (b + a).data)


@settings(max_examples=25, deadline=None)
@given(small_matrices())
def test_sum_matches_numpy(matrix):
    assert np.allclose(Tensor(matrix).sum().data, matrix.sum())
    assert np.allclose(Tensor(matrix).mean().data, matrix.mean())


@settings(max_examples=25, deadline=None)
@given(small_matrices())
def test_relu_is_idempotent_and_nonnegative(matrix):
    once = Tensor(matrix).relu()
    twice = once.relu()
    assert np.all(once.data >= 0)
    assert np.allclose(once.data, twice.data)


@settings(max_examples=25, deadline=None)
@given(small_matrices())
def test_softmax_rows_are_distributions(matrix):
    probs = F.softmax(Tensor(matrix), axis=1).data
    assert np.all(probs >= 0)
    assert np.allclose(probs.sum(axis=1), 1.0)


@settings(max_examples=25, deadline=None)
@given(small_matrices())
def test_l2_normalize_is_scale_invariant(matrix):
    # Rows with a tiny norm are dominated by the numerical-stability epsilon,
    # so scale invariance is only expected for rows of non-negligible norm.
    scaled = matrix * 3.7
    a = F.l2_normalize(Tensor(matrix)).data
    b = F.l2_normalize(Tensor(scaled)).data
    stable_rows = np.linalg.norm(matrix, axis=1) > 1e-3
    assert np.allclose(a[stable_rows], b[stable_rows], atol=1e-5)


@settings(max_examples=15, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(2, 4), st.integers(2, 4)),
        elements=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False, allow_infinity=False),
    )
)
def test_elementwise_chain_gradient_matches_numerical(matrix):
    tensor = Tensor(matrix, requires_grad=True)
    gradient_check(lambda inp: (inp[0].tanh() * inp[0].sigmoid()).sum(), [tensor], atol=1e-3)


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 6), st.integers(2, 6), st.integers(1, 5))
def test_matmul_gradient_random_shapes(rows, inner, cols):
    rng = np.random.default_rng(rows * 100 + inner * 10 + cols)
    a = Tensor(rng.normal(size=(rows, inner)), requires_grad=True)
    b = Tensor(rng.normal(size=(inner, cols)), requires_grad=True)
    gradient_check(lambda inp: (inp[0] @ inp[1]).sum(), [a, b])


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 50))
def test_backward_of_sum_is_all_ones(length):
    tensor = Tensor(np.linspace(-1, 1, length), requires_grad=True)
    tensor.sum().backward()
    assert np.allclose(tensor.grad, np.ones(length))


@settings(max_examples=20, deadline=None)
@given(small_matrices(3, 3), st.floats(min_value=0.05, max_value=2.0))
def test_info_nce_is_finite_and_nonnegative(matrix, temperature):
    anchors = Tensor(matrix)
    positives = Tensor(matrix[::-1].copy())
    loss = F.info_nce(anchors, positives, temperature=temperature).item()
    assert np.isfinite(loss)
    assert loss >= 0.0
