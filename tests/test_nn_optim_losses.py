"""Tests for optimisers (SGD, Adam) and loss modules."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro.nn import MLP, SGD, Adam, BCELoss, BCEWithLogitsLoss, InfoNCELoss, Linear, Parameter


def _quadratic_loss(parameter: Parameter) -> Tensor:
    # f(w) = sum((w - 3)^2), minimised at w = 3.
    diff = parameter - 3.0
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        weight = Parameter(np.zeros(4))
        optimizer = SGD([weight], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            _quadratic_loss(weight).backward()
            optimizer.step()
        assert np.allclose(weight.data, 3.0, atol=1e-3)

    def test_momentum_accelerates(self):
        plain_weight = Parameter(np.zeros(3))
        momentum_weight = Parameter(np.zeros(3))
        plain = SGD([plain_weight], lr=0.01)
        momentum = SGD([momentum_weight], lr=0.01, momentum=0.9)
        for _ in range(30):
            for optimizer, weight in ((plain, plain_weight), (momentum, momentum_weight)):
                optimizer.zero_grad()
                _quadratic_loss(weight).backward()
                optimizer.step()
        assert abs(momentum_weight.data.mean() - 3.0) < abs(plain_weight.data.mean() - 3.0)

    def test_weight_decay_shrinks_solution(self):
        weight = Parameter(np.zeros(2))
        optimizer = SGD([weight], lr=0.1, weight_decay=1.0)
        for _ in range(300):
            optimizer.zero_grad()
            _quadratic_loss(weight).backward()
            optimizer.step()
        assert np.all(weight.data < 3.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_parameters_without_grad_are_skipped(self):
        weight = Parameter(np.ones(2))
        optimizer = SGD([weight], lr=0.5)
        optimizer.step()  # no gradient yet — must not crash or move weights
        assert np.allclose(weight.data, 1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        weight = Parameter(np.full(4, -2.0))
        optimizer = Adam([weight], lr=0.1)
        for _ in range(400):
            optimizer.zero_grad()
            _quadratic_loss(weight).backward()
            optimizer.step()
        assert np.allclose(weight.data, 3.0, atol=1e-2)

    def test_deduplicates_shared_parameters(self):
        weight = Parameter(np.zeros(2))
        optimizer = Adam([weight, weight, weight], lr=0.1)
        assert len(optimizer.parameters) == 1

    def test_invalid_betas_raise(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.1, betas=(1.2, 0.9))

    def test_trains_logistic_regression(self, rng):
        features = rng.normal(size=(300, 6))
        true_weights = rng.normal(size=6)
        labels = (features @ true_weights > 0).astype(float)
        model = MLP([6, 1], output_activation="sigmoid", rng=rng)
        optimizer = Adam(model.parameters(), lr=0.1)
        for _ in range(150):
            optimizer.zero_grad()
            predictions = model(Tensor(features)).reshape(-1)
            F.binary_cross_entropy(predictions, labels).backward()
            optimizer.step()
        accuracy = ((model(Tensor(features)).data.reshape(-1) > 0.5) == labels).mean()
        assert accuracy > 0.95


class TestLossModules:
    def test_bce_loss_module_matches_functional(self, rng):
        predictions = Tensor(rng.uniform(0.1, 0.9, size=10))
        labels = (rng.random(10) > 0.5).astype(float)
        assert BCELoss()(predictions, labels).item() == pytest.approx(
            F.binary_cross_entropy(predictions, labels).item()
        )

    def test_bce_with_logits_module(self, rng):
        logits = Tensor(rng.normal(size=10))
        labels = (rng.random(10) > 0.5).astype(float)
        assert BCEWithLogitsLoss()(logits, labels).item() == pytest.approx(
            F.binary_cross_entropy_with_logits(logits, labels).item()
        )

    def test_info_nce_module_temperature_validation(self):
        with pytest.raises(ValueError):
            InfoNCELoss(temperature=0.0)

    def test_info_nce_module_callable(self, rng):
        anchors = Tensor(rng.normal(size=(6, 8)))
        loss = InfoNCELoss(temperature=0.2)(anchors, Tensor(anchors.data.copy()))
        assert loss.item() >= 0.0

    def test_training_reduces_bce(self, rng):
        layer = Linear(4, 1, rng=rng)
        features = rng.normal(size=(120, 4))
        labels = (features[:, 0] > 0).astype(float)
        optimizer = Adam(layer.parameters(), lr=0.05)
        first_loss = None
        for step in range(80):
            optimizer.zero_grad()
            predictions = layer(Tensor(features)).reshape(-1).sigmoid()
            loss = F.binary_cross_entropy(predictions, labels)
            if step == 0:
                first_loss = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first_loss
