"""Tests for Linear, Embedding, MLP, Dropout, Sequential and initialisers."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradient_check
from repro.nn import MLP, Dropout, Embedding, Linear, Sequential, init
from repro.nn.layers import build_activation


class TestInitialisers:
    def test_xavier_uniform_bounds(self, rng):
        weights = init.xavier_uniform((100, 50), rng=rng)
        limit = np.sqrt(6.0 / 150)
        assert weights.shape == (100, 50)
        assert np.all(np.abs(weights) <= limit)

    def test_xavier_normal_std(self, rng):
        weights = init.xavier_normal((200, 200), rng=rng)
        assert abs(weights.std() - np.sqrt(2.0 / 400)) < 0.005

    def test_uniform_and_zeros(self, rng):
        assert np.all(np.abs(init.uniform((10, 10), -0.2, 0.2, rng=rng)) <= 0.2)
        assert np.all(init.zeros((5,)) == 0.0)

    def test_deterministic_given_seed(self):
        a = init.xavier_uniform((4, 4), rng=np.random.default_rng(3))
        b = init.xavier_uniform((4, 4), rng=np.random.default_rng(3))
        assert np.allclose(a, b)


class TestLinear:
    def test_output_shape_and_bias(self, rng):
        layer = Linear(5, 3, rng=rng)
        output = layer(Tensor(rng.normal(size=(7, 5))))
        assert output.shape == (7, 3)

    def test_no_bias_option(self, rng):
        layer = Linear(5, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_matches_manual_computation(self, rng):
        layer = Linear(4, 2, rng=rng)
        x = rng.normal(size=(3, 4))
        expected = x @ layer.weight.data + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)

    def test_gradients_flow_to_weight_and_bias(self, rng):
        layer = Linear(3, 2, rng=rng)
        layer(Tensor(rng.normal(size=(4, 3)))).sum().backward()
        assert layer.weight.grad is not None and layer.bias.grad is not None

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            Linear(0, 3)


class TestEmbedding:
    def test_lookup_shape(self, rng):
        table = Embedding(10, 6, rng=rng)
        assert table([1, 4, 4, 9]).shape == (4, 6)

    def test_repeated_indices_accumulate_gradient(self, rng):
        table = Embedding(5, 3, rng=rng)
        table([2, 2, 2]).sum().backward()
        assert np.allclose(table.weight.grad[2], 3.0)
        assert np.allclose(table.weight.grad[0], 0.0)

    def test_out_of_range_raises(self, rng):
        table = Embedding(5, 3, rng=rng)
        with pytest.raises(IndexError):
            table([5])
        with pytest.raises(IndexError):
            table([-1])

    def test_all_embeddings_shape(self, rng):
        table = Embedding(7, 4, rng=rng)
        assert table.all_embeddings().shape == (7, 4)

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            Embedding(0, 4)


class TestDropoutLayer:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.8, rng=rng)
        layer.eval()
        x = Tensor(rng.normal(size=(20, 20)))
        assert np.allclose(layer(x).data, x.data)

    def test_training_mode_zeroes_entries(self, rng):
        layer = Dropout(0.5, rng=rng)
        output = layer(Tensor(np.ones((50, 50)))).data
        assert (output == 0.0).mean() > 0.3

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestMLPAndSequential:
    def test_mlp_output_shape(self, rng):
        mlp = MLP([6, 12, 4, 1], rng=rng)
        assert mlp(Tensor(rng.normal(size=(9, 6)))).shape == (9, 1)

    def test_sigmoid_output_activation_bounds(self, rng):
        mlp = MLP([4, 8, 1], output_activation="sigmoid", rng=rng)
        output = mlp(Tensor(rng.normal(size=(20, 4)) * 5)).data
        assert np.all(output > 0) and np.all(output < 1)

    def test_mlp_requires_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_mlp_gradient_flows_to_all_layers(self, rng):
        mlp = MLP([3, 5, 2], rng=rng)
        mlp(Tensor(rng.normal(size=(4, 3)))).sum().backward()
        assert all(p.grad is not None for p in mlp.parameters())

    def test_mlp_end_to_end_gradient_check(self, rng):
        mlp = MLP([3, 4, 1], rng=rng)
        x = Tensor(rng.normal(size=(5, 3)))

        def loss_fn(params):
            return (mlp(x) ** 2).sum()

        gradient_check(loss_fn, mlp.parameters(), atol=1e-3)

    def test_sequential_length_and_iteration(self, rng):
        seq = Sequential([Linear(2, 3, rng=rng), Linear(3, 1, rng=rng)])
        assert len(seq) == 2
        assert seq(Tensor(rng.normal(size=(4, 2)))).shape == (4, 1)

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            build_activation("swish")

    def test_activation_factory_known_names(self, rng):
        x = Tensor(rng.normal(size=(3, 3)))
        for name in ("relu", "tanh", "sigmoid", "identity", "none"):
            module = build_activation(name)
            assert module(x).shape == x.shape
