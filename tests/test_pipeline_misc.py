"""Tests for the scenario preparation pipeline and miscellaneous helpers."""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticConfig
from repro.graph.builder import GraphBuildConfig
from repro.pipeline import prepare_scenario


CONFIG = SyntheticConfig(
    name="pipeline-test",
    num_queries=60,
    num_services=25,
    num_interactions=1_200,
    total_page_views=8_000,
    num_intention_trees=2,
    intention_depth=3,
    head_fraction=0.1,
    seed=11,
)


class TestPrepareScenario:
    def test_components_are_consistent(self):
        scenario = prepare_scenario(CONFIG)
        assert scenario.name == "pipeline-test"
        assert scenario.graph.num_queries == scenario.dataset.num_queries
        assert scenario.graph.num_services == scenario.dataset.num_services
        assert scenario.forest.num_intentions == scenario.dataset.num_intentions
        assert scenario.oracle is not None
        assert sum(scenario.splits.sizes) == scenario.dataset.num_interactions

    def test_head_fraction_defaults_to_generator_setting(self):
        scenario = prepare_scenario(CONFIG)
        expected_head = max(1, int(round(CONFIG.head_fraction * CONFIG.num_queries)))
        assert scenario.head_tail.num_head == expected_head

    def test_head_fraction_override(self):
        scenario = prepare_scenario(CONFIG, head_fraction=0.2)
        assert scenario.head_tail.num_head == max(1, int(round(0.2 * CONFIG.num_queries)))

    def test_split_fraction_overrides(self):
        scenario = prepare_scenario(CONFIG, validation_fraction=0.2, test_fraction=0.3)
        total = scenario.dataset.num_interactions
        assert len(scenario.splits.validation) == pytest.approx(0.2 * total, abs=2)
        assert len(scenario.splits.test) == pytest.approx(0.3 * total, abs=2)

    def test_graph_config_override_changes_graph(self):
        default = prepare_scenario(CONFIG)
        strict = prepare_scenario(
            CONFIG, graph_config=GraphBuildConfig(min_shared_attributes=3,
                                                  max_correlation_edges_per_query=1)
        )
        assert strict.graph.num_edges <= default.graph.num_edges

    def test_graph_uses_only_training_window(self):
        scenario = prepare_scenario(CONFIG, validation_fraction=0.0, test_fraction=0.5)
        # With half the data held out, the graph must still be buildable and
        # must not reference clicks that only exist in the test half.
        train_pairs = {(i.query_id, i.service_id) for i in scenario.splits.train if i.clicked}
        query_nodes, service_nodes = np.nonzero(np.triu(scenario.graph.ctr > 0))
        for query_node, service_node in zip(query_nodes, service_nodes):
            assert (int(query_node), int(service_node - scenario.graph.num_queries)) in train_pairs


class TestSliceMetrics:
    def test_as_dict_round_trip(self):
        from repro.eval.evaluator import SliceMetrics

        metrics = SliceMetrics(auc=0.8, gauc=0.7, ndcg=0.9, num_interactions=10, num_queries=4)
        data = metrics.as_dict()
        assert data["auc"] == pytest.approx(0.8)
        assert data["num_queries"] == 4
