"""Tests for the trainer, pre-trainer, fine-tuner and training history."""

import numpy as np
import pytest

from repro.models import LightGCN
from repro.models.garcia.config import GarciaConfig
from repro.models.garcia.model import build_garcia
from repro.training import Pretrainer, Trainer, TrainerConfig, seed_everything
from repro.training.finetuner import Finetuner, train_garcia
from repro.training.history import EpochRecord, TrainingHistory


def _garcia(tiny_scenario, **overrides):
    config = GarciaConfig(embedding_dim=8, intention_levels=2, seed=1, **overrides)
    return build_garcia(
        tiny_scenario.dataset, tiny_scenario.graph, tiny_scenario.forest,
        tiny_scenario.head_tail, config,
    )


class TestTrainerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(num_epochs=-1)
        with pytest.raises(ValueError):
            TrainerConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            TrainerConfig(batch_size=0)


class TestTrainer:
    def test_loss_decreases_over_epochs(self, tiny_scenario):
        model = LightGCN(tiny_scenario.graph, embedding_dim=8, seed=0)
        trainer = Trainer(model, TrainerConfig(num_epochs=3, learning_rate=5e-3, eval_every=0))
        history = trainer.fit(tiny_scenario.splits.train)
        losses = history.losses()
        assert len(losses) == 3
        assert losses[-1] < losses[0]

    def test_validation_metrics_recorded(self, tiny_scenario):
        model = LightGCN(tiny_scenario.graph, embedding_dim=8, seed=0)
        trainer = Trainer(model, TrainerConfig(num_epochs=2, learning_rate=5e-3, eval_every=1))
        history = trainer.fit(
            tiny_scenario.splits.train, tiny_scenario.splits.validation, tiny_scenario.head_tail
        )
        assert all("overall_auc" in record.metrics for record in history.records)
        assert history.total_steps > 0

    def test_zero_epochs_is_a_noop(self, tiny_scenario):
        model = LightGCN(tiny_scenario.graph, embedding_dim=8, seed=0)
        history = Trainer(model, TrainerConfig(num_epochs=0)).fit(tiny_scenario.splits.train)
        assert history.num_epochs == 0

    def test_model_left_in_eval_mode(self, tiny_scenario):
        model = LightGCN(tiny_scenario.graph, embedding_dim=8, seed=0)
        Trainer(model, TrainerConfig(num_epochs=1, eval_every=0)).fit(tiny_scenario.splits.train)
        assert not model.training


class TestPretrainerAndFinetuner:
    def test_pretrain_then_finetune_runs(self, tiny_scenario):
        model = _garcia(tiny_scenario)
        result = train_garcia(
            model,
            tiny_scenario.splits.train,
            validation_interactions=tiny_scenario.splits.validation,
            head_tail=tiny_scenario.head_tail,
            pretrain_config=TrainerConfig(num_epochs=1, learning_rate=5e-3, eval_every=0),
            finetune_config=TrainerConfig(num_epochs=1, learning_rate=5e-3, eval_every=1),
        )
        assert result.pretrain_history.num_epochs == 1
        assert result.finetune_history.num_epochs == 1
        assert np.isfinite(result.pretrain_history.losses()[0])

    def test_pretrainer_skips_when_all_granularities_disabled(self, tiny_scenario):
        model = _garcia(tiny_scenario, use_ktcl=False, use_secl=False, use_igcl=False)
        history = Pretrainer(model, TrainerConfig(num_epochs=2, eval_every=0)).run(
            tiny_scenario.splits.train
        )
        assert history.num_epochs == 0

    def test_pretraining_moves_parameters(self, tiny_scenario):
        model = _garcia(tiny_scenario)
        before = model.state_dict()
        Pretrainer(model, TrainerConfig(num_epochs=1, learning_rate=1e-2, eval_every=0)).run(
            tiny_scenario.splits.train
        )
        after = model.state_dict()
        moved = any(not np.allclose(before[name], after[name]) for name in before)
        assert moved

    def test_finetuner_loads_pretrained_state(self, tiny_scenario):
        donor = _garcia(tiny_scenario)
        pretrainer = Pretrainer(donor, TrainerConfig(num_epochs=1, learning_rate=1e-2, eval_every=0))
        pretrainer.run(tiny_scenario.splits.train)
        state = pretrainer.pretrained_state()

        recipient = _garcia(tiny_scenario)
        finetuner = Finetuner(recipient, TrainerConfig(num_epochs=0))
        finetuner.run(tiny_scenario.splits.train, pretrained_state=state)
        for name, value in recipient.state_dict().items():
            assert np.allclose(value, state[name])


class TestHistory:
    def test_metric_series_and_best_epoch(self):
        history = TrainingHistory()
        history.append(EpochRecord(epoch=1, loss=1.0, metrics={"overall_auc": 0.6}, num_steps=10))
        history.append(EpochRecord(epoch=2, loss=0.8, metrics={"overall_auc": 0.7}, num_steps=10))
        history.append(EpochRecord(epoch=3, loss=0.7, metrics={}, num_steps=10))
        assert history.losses() == [1.0, 0.8, 0.7]
        assert history.metric("overall_auc")[:2] == [0.6, 0.7]
        assert np.isnan(history.metric("overall_auc")[2])
        assert history.best_epoch("overall_auc").epoch == 2
        assert history.total_steps == 30

    def test_best_epoch_none_when_metric_missing(self):
        history = TrainingHistory()
        history.append(EpochRecord(epoch=1, loss=1.0))
        assert history.best_epoch("auc") is None


class TestSeeding:
    def test_seed_everything_returns_generator(self):
        generator = seed_everything(42)
        first = generator.random(3)
        second = seed_everything(42).random(3)
        assert np.allclose(first, second)
