"""Tests for stochastic graph augmentations (used by the SGL / SimGCL baselines)."""

import numpy as np
import pytest

from repro.graph.sampling import add_embedding_noise, dropout_adjacency, dropout_nodes


def _symmetric_adjacency(rng, size=20, density=0.3):
    upper = np.triu((rng.random((size, size)) < density).astype(float), k=1)
    return upper + upper.T


class TestEdgeDropout:
    def test_zero_rate_is_identity(self, rng):
        adjacency = _symmetric_adjacency(rng)
        assert np.allclose(dropout_adjacency(adjacency, 0.0, rng=rng), adjacency)

    def test_result_is_subset_and_symmetric(self, rng):
        adjacency = _symmetric_adjacency(rng)
        dropped = dropout_adjacency(adjacency, 0.5, rng=rng)
        assert np.all(dropped <= adjacency)
        assert np.allclose(dropped, dropped.T)

    def test_approximately_rate_edges_removed(self, rng):
        adjacency = _symmetric_adjacency(rng, size=120, density=0.4)
        dropped = dropout_adjacency(adjacency, 0.3, rng=rng)
        kept_fraction = dropped.sum() / adjacency.sum()
        assert 0.55 < kept_fraction < 0.85

    def test_invalid_rate_raises(self, rng):
        with pytest.raises(ValueError):
            dropout_adjacency(np.zeros((3, 3)), 1.0, rng=rng)

    def test_original_not_modified(self, rng):
        adjacency = _symmetric_adjacency(rng)
        copy = adjacency.copy()
        dropout_adjacency(adjacency, 0.5, rng=rng)
        assert np.allclose(adjacency, copy)


class TestNodeDropout:
    def test_dropped_nodes_are_isolated(self, rng):
        adjacency = _symmetric_adjacency(rng, size=60)
        dropped = dropout_nodes(adjacency, 0.5, rng=rng)
        degrees_before = adjacency.sum(axis=1)
        degrees_after = dropped.sum(axis=1)
        # Some previously connected node must now be isolated.
        assert np.any((degrees_before > 0) & (degrees_after == 0))
        assert np.allclose(dropped, dropped.T)

    def test_zero_rate_identity_and_validation(self, rng):
        adjacency = _symmetric_adjacency(rng)
        assert np.allclose(dropout_nodes(adjacency, 0.0, rng=rng), adjacency)
        with pytest.raises(ValueError):
            dropout_nodes(adjacency, -0.1, rng=rng)


class TestEmbeddingNoise:
    def test_zero_magnitude_is_identity(self, rng):
        embeddings = rng.normal(size=(10, 8))
        assert np.allclose(add_embedding_noise(embeddings, 0.0, rng=rng), embeddings)

    def test_perturbation_magnitude_bounded(self, rng):
        embeddings = rng.normal(size=(50, 16))
        noisy = add_embedding_noise(embeddings, 0.1, rng=rng)
        deltas = np.linalg.norm(noisy - embeddings, axis=1)
        assert np.all(deltas <= 0.1 + 1e-9)
        assert np.all(deltas > 0)

    def test_noise_preserves_signs(self, rng):
        embeddings = rng.normal(size=(30, 8)) + 1.0  # mostly positive
        noisy = add_embedding_noise(embeddings, 0.05, rng=rng)
        positive = embeddings > 0.1
        assert np.all(noisy[positive] >= embeddings[positive])

    def test_negative_magnitude_rejected(self, rng):
        with pytest.raises(ValueError):
            add_embedding_noise(np.zeros((2, 2)), -1.0, rng=rng)
