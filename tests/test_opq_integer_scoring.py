"""Tests for PR 9: OPQ learned rotation + end-to-end int8 integer scoring.

Covers the OPQ quantizer contracts (orthonormal rotation across seeds, a
recall win over plain PQ on correlated data), the integer scoring path's
documented error bound and chunking invariance, the frozen query scale's
propagation through shard views and durable snapshots, the adaptive
shortlist shrink (parity with the unshrunk search, stats accounting,
telemetry surfacing), the IVF-PQ rotation round-trip through persisted
state, and the acceptance contract: a warm-started gateway and a revived
fleet replica serve rotated, integer-scored codes bit-identically to the
in-memory trainer.
"""

import numpy as np
import pytest

from repro.serving.fleet import FleetReplica
from repro.serving.gateway import (
    ExactIndex,
    IVFPQIndex,
    ServingGateway,
    VersionedEmbeddingStore,
    clustered_embeddings,
)
from repro.serving.quant import (
    OPQQuantizer,
    OPQTable,
    quantize_int8,
    quantize_opq,
    quantize_pq,
    quantize_table,
)
from repro.eval.serving_metrics import recall_at_k


@pytest.fixture(scope="module")
def clustered():
    return clustered_embeddings(200, 1500, 32, num_clusters=10, spread=0.2,
                                seed=7)


@pytest.fixture(scope="module")
def correlated(clustered):
    """The clustered workload pushed through one fixed mixing matrix.

    Clustered synthetic data is nearly isotropic per subspace, where a
    learned rotation cannot help; a dense mix correlates the dimensions
    (unequal variance directions straddling subspace boundaries), which is
    the regime OPQ exists for.
    """
    queries, services = clustered
    rng = np.random.default_rng(11)
    mix = rng.normal(size=(32, 32)).astype(np.float32)
    mix *= np.geomspace(1.0, 8.0, 32, dtype=np.float32)
    return (queries @ mix.T).astype(np.float32), (services @ mix.T).astype(np.float32)


# --------------------------------------------------------------------- #
# OPQ quantizer
# --------------------------------------------------------------------- #
class TestOPQQuantizer:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rotation_is_orthonormal_across_seeds(self, correlated, seed):
        _, services = correlated
        quantizer = OPQQuantizer(num_subspaces=4, num_centroids=32,
                                 seed=seed).fit(services)
        rotation = quantizer.rotation_
        pdim = rotation.shape[0]
        assert rotation.shape == (pdim, pdim)
        identity = rotation @ rotation.T
        assert np.allclose(identity, np.eye(pdim), atol=1e-4)
        # |det| == 1 rules out any scaling hiding inside the rotation.
        assert abs(abs(np.linalg.det(rotation.astype(np.float64))) - 1.0) < 1e-3

    def test_fit_is_deterministic(self, correlated):
        _, services = correlated
        a = OPQQuantizer(num_subspaces=4, num_centroids=32, seed=3).fit(services)
        b = OPQQuantizer(num_subspaces=4, num_centroids=32, seed=3).fit(services)
        assert np.array_equal(a.rotation_, b.rotation_)
        assert np.array_equal(a.codebooks_, b.codebooks_)

    def test_rotated_recall_beats_plain_pq_on_correlated_data(self, correlated):
        queries, services = correlated
        probe = queries[:128]
        exact_ids, _ = ExactIndex().build(services).search(probe, 10)
        plain = quantize_pq(services, num_subspaces=4, num_centroids=32)
        rotated = quantize_opq(services, num_subspaces=4, num_centroids=32)
        plain_ids = np.argsort(-plain.scores(probe), axis=1)[:, :10]
        rotated_ids = np.argsort(-rotated.scores(probe), axis=1)[:, :10]
        plain_recall = recall_at_k(plain_ids, exact_ids, 10)
        rotated_recall = recall_at_k(rotated_ids, exact_ids, 10)
        assert rotated_recall >= plain_recall

    def test_opq_table_is_registered_and_sliceable(self, correlated):
        _, services = correlated
        table = quantize_table("opq", services, num_subspaces=4,
                               num_centroids=32)
        assert isinstance(table, OPQTable) and table.kind == "opq"
        shard = table.rows(100, 300)
        assert isinstance(shard, OPQTable)
        assert shard.quantizer is table.quantizer
        assert np.array_equal(shard.codes, table.codes[100:300])

    def test_zero_iters_keeps_the_eigen_init(self, correlated):
        _, services = correlated
        quantizer = OPQQuantizer(num_subspaces=4, num_centroids=32,
                                 opq_iters=0).fit(services)
        rotation = quantizer.rotation_
        assert np.allclose(rotation @ rotation.T,
                           np.eye(rotation.shape[0]), atol=1e-4)


# --------------------------------------------------------------------- #
# Integer int8 scoring
# --------------------------------------------------------------------- #
class TestIntegerScoring:
    def test_scores_int_within_documented_bound(self, clustered):
        queries, services = clustered
        table = quantize_int8(services)
        probe = queries[:64]
        float_scores = table.scores(probe)
        int_scores = table.scores_int(probe)
        _, qscale = table.quantize_queries(probe)
        # |scores_int - scores| <= qscale / 2 * ||code_row||_1 per score.
        code_l1 = np.abs(table.codes.astype(np.float32)).sum(axis=1)
        bound = qscale[:, None] / 2.0 * code_l1[None, :]
        assert np.all(np.abs(int_scores - float_scores) <= bound + 1e-4)

    def test_scores_int_chunking_is_invariant(self, clustered):
        queries, services = clustered
        table = quantize_int8(services)
        probe = queries[:16]
        whole = table.scores_int(probe, chunk=10_000)
        chunked = table.scores_int(probe, chunk=257)
        assert np.array_equal(whole, chunked)

    def test_frozen_query_scale_propagates_and_determinises(self, clustered):
        queries, services = clustered
        table = quantize_int8(services, queries=queries)
        assert table.query_scale is not None and table.query_scale > 0
        shard = table.rows(200, 900)
        assert shard.query_scale == table.query_scale
        # Sharded integer scores must equal the global scan's columns —
        # only the frozen global step makes that hold for every probe.
        probe = queries[:8]
        assert np.array_equal(table.scores_int(probe)[:, 200:900],
                              shard.scores_int(probe))
        _, qscale = table.quantize_queries(probe)
        assert np.all(qscale == np.float32(table.query_scale))

    def test_fresh_table_nbytes_excludes_lazy_transpose(self, clustered):
        _, services = clustered
        table = quantize_int8(services)
        base = table.codes.nbytes + table.scales.nbytes
        assert table.nbytes == base
        table.codes_t  # materialize the integer path's layout
        assert table.nbytes == base + table.codes_t.nbytes


# --------------------------------------------------------------------- #
# IVF-PQ: rotation, shortlist shrink, state round-trip
# --------------------------------------------------------------------- #
class TestIVFPQRotation:
    def test_shrink_parity_and_stats(self, clustered):
        queries, services = clustered
        index = IVFPQIndex(num_subspaces=4, rotation="opq",
                           refine_factor=12).build(services)
        probe = queries[:96]
        shrunk_ids, _ = index.search(probe, 10)
        candidates, kept = index.take_shortlist_stats()
        assert candidates >= kept > 0
        # take_* drains: a second read reports nothing until a new search.
        assert index.take_shortlist_stats() == (0, 0)
        index.shrink_margin = None
        full_ids, _ = index.search(probe, 10)
        assert recall_at_k(shrunk_ids, full_ids, 10) == 1.0

    def test_rotation_state_round_trip_is_bit_identical(self, clustered):
        queries, services = clustered
        table = quantize_int8(services, queries=queries)
        index = IVFPQIndex(num_subspaces=4, rotation="opq", seed=2,
                           int8_table=table).build(services)
        meta, arrays = index.export_state()
        assert meta["rotation"] == "opq"
        assert arrays["rotation"].shape[0] == arrays["rotation"].shape[1]
        restored = IVFPQIndex.from_state(meta, dict(arrays), int8_table=table)
        probe = queries[:32]
        ids_a, scores_a = index.search(probe, 10)
        ids_b, scores_b = restored.search(probe, 10)
        assert np.array_equal(ids_a, ids_b)
        assert np.array_equal(scores_a, scores_b)

    def test_refined_scores_match_scores_int_arithmetic(self, clustered):
        """The refinement runs the *same* integer arithmetic as scores_int.

        Every partial sum in both paths is an exact integer below 2**24, so
        float32 accumulation order cannot matter and the refined scores
        must equal a full integer scan gathered at the returned ids.
        """
        queries, services = clustered
        table = quantize_int8(services, queries=queries)
        index = IVFPQIndex(num_subspaces=4, int8_table=table).build(services)
        probe = queries[:32]
        ids, scores = index.search(probe, 10)
        full = table.scores_int(probe)
        gathered = np.take_along_axis(full, np.maximum(ids, 0), axis=1)
        valid = ids >= 0
        assert np.array_equal(scores[valid],
                              gathered[valid].astype(np.float64))


# --------------------------------------------------------------------- #
# Store + snapshot round-trip, retention, acceptance
# --------------------------------------------------------------------- #
class TestDurableRoundTrip:
    @pytest.fixture()
    def durable_store(self, tmp_path, clustered):
        queries, services = clustered
        store = VersionedEmbeddingStore(
            queries, services, num_shards=2,
            quantization=("int8", "opq"),
            quantization_params={"opq": dict(num_subspaces=4,
                                             num_centroids=32)},
            durable_dir=str(tmp_path / "snap"),
        )
        return store, tmp_path / "snap"

    def test_opq_and_query_scale_survive_restore(self, durable_store):
        store, root = durable_store
        snapshot = store.snapshot()
        restored = VersionedEmbeddingStore.restore(str(root))
        revived = restored.snapshot()
        original_opq = snapshot.quantized["opq"]
        revived_opq = revived.quantized["opq"]
        assert np.array_equal(original_opq.codes, revived_opq.codes)
        assert np.array_equal(original_opq.quantizer.rotation_,
                              revived_opq.quantizer.rotation_)
        assert np.array_equal(original_opq.quantizer.codebooks_,
                              revived_opq.quantizer.codebooks_)
        original_int8 = snapshot.quantized["int8"]
        revived_int8 = revived.quantized["int8"]
        assert revived_int8.query_scale == original_int8.query_scale
        probe = snapshot.queries[:8]
        assert np.array_equal(original_int8.scores_int(probe),
                              revived_int8.scores_int(probe))

    def test_keep_last_prunes_old_versions(self, tmp_path, clustered):
        queries, services = clustered
        store = VersionedEmbeddingStore(
            queries, services, durable_dir=str(tmp_path / "snap"),
            keep_last=2,
        )
        for step in range(1, 4):
            store.publish(queries + np.float32(0.001 * step), services)
        manifests = sorted(
            path.name
            for path in (tmp_path / "snap" / "manifests").glob("v*.json")
            if "-index-" not in path.name
        )
        assert manifests == ["v2.json", "v3.json"]
        # The pointer target survived the prune and still restores.
        restored = VersionedEmbeddingStore.restore(str(tmp_path / "snap"))
        assert restored.version == 3
        assert restored.keep_last == 2

    def test_keep_last_validates_and_persists(self, tmp_path, clustered):
        queries, services = clustered
        with pytest.raises(ValueError):
            VersionedEmbeddingStore(queries, services, keep_last=0)
        store = VersionedEmbeddingStore(
            queries, services, durable_dir=str(tmp_path / "snap"), keep_last=3,
        )
        restored = VersionedEmbeddingStore.restore(str(tmp_path / "snap"))
        assert restored.keep_last == store.keep_last == 3

    def test_warm_gateway_and_revived_replica_bit_identical(self, durable_store):
        store, root = durable_store
        params = {"num_subspaces": 4, "rotation": "opq"}
        gateway = ServingGateway(store, index="ivfpq", index_params=params,
                                 cache_capacity=0)
        expected = [gateway.rank(query_id, 10) for query_id in range(12)]
        gateway.persist_index()
        gateway.close()

        warm_store = VersionedEmbeddingStore.restore(str(root))
        warm = ServingGateway(warm_store, index="ivfpq", cache_capacity=0)
        try:
            restored = warm._restore_index(warm_store.snapshot())
            assert restored is not None
            assert restored.rotation == "opq"
            assert [warm.rank(query_id, 10) for query_id in range(12)] == expected
        finally:
            warm.close()

        replica = FleetReplica(
            "lazarus",
            ServingGateway(VersionedEmbeddingStore.restore(str(root)),
                           index="ivfpq", cache_capacity=0),
        )
        try:
            replica.kill()
            replica.revive(warm_start=str(root))
            assert [replica.gateway.rank(query_id, 10)
                    for query_id in range(12)] == expected
        finally:
            replica.close()

    def test_gateway_telemetry_surfaces_shortlist_counts(self, clustered):
        queries, services = clustered
        store = VersionedEmbeddingStore(queries, services)
        gateway = ServingGateway(store, index="ivfpq",
                                 index_params={"num_subspaces": 4,
                                               "refine_factor": 12},
                                 cache_capacity=0)
        try:
            for query_id in range(24):
                gateway.rank(query_id, 10)
            summary = gateway.summary()
            assert summary["shortlist_candidates"] > 0
            assert 0 < summary["shortlist_kept"] <= summary["shortlist_candidates"]
        finally:
            gateway.close()
