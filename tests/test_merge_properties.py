"""Property-style randomized parity tests for ``serving.sharded.merge``.

The sharded tier's correctness contract is that the vectorised k-way merge
of per-shard top-K lists is *bit-identical* to a single-process argsort
over the concatenated catalogue (score descending, ties broken by
ascending global id, ``(-1, -inf)`` padding).  These tests drive that
contract with randomized workloads — random seeds, shard counts, uneven
shard boundaries, heavy duplicate-score ties, and the k > rows-per-shard
edge cases — against an independently written reference.
"""

import numpy as np
import pytest

from repro.serving.sharded.merge import merge_top_k, shard_candidate_counts


def reference_top_k(scores: np.ndarray, k: int):
    """Single-process reference: per-row sort by (-score, id), then pad.

    Written as a plain per-row python sort — deliberately *not* sharing any
    code with the vectorised implementations it checks.
    """
    batch, num_services = scores.shape
    out_ids = np.full((batch, k), -1, dtype=np.int64)
    out_scores = np.full((batch, k), -np.inf, dtype=np.float64)
    for row in range(batch):
        order = sorted(range(num_services),
                       key=lambda sid: (-scores[row, sid], sid))[:k]
        out_ids[row, : len(order)] = order
        out_scores[row, : len(order)] = scores[row, order]
    return out_ids, out_scores


def shard_lists(scores: np.ndarray, bounds, k: int):
    """Each shard's local top-K (global ids, padded) from the score matrix."""
    shard_ids, shard_scores = [], []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        ids, block = reference_top_k(scores[:, lo:hi], k)
        real = ids >= 0
        ids = np.where(real, ids + lo, -1)  # local -> global ids
        shard_ids.append(ids)
        shard_scores.append(block)
    return shard_ids, shard_scores


def random_bounds(rng: np.random.Generator, num_services: int, num_shards: int):
    """Random uneven (but non-empty) contiguous shard boundaries."""
    cuts = rng.choice(np.arange(1, num_services), size=num_shards - 1,
                      replace=False)
    return [0, *sorted(int(cut) for cut in cuts), num_services]


class TestMergeRandomizedParity:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("num_shards", [2, 3, 5, 8])
    def test_merge_matches_single_process_argsort(self, seed, num_shards):
        rng = np.random.default_rng(seed)
        num_services = int(rng.integers(num_shards + 1, 60))
        batch = int(rng.integers(1, 7))
        k = int(rng.integers(1, 12))
        # A tiny discrete score alphabet forces duplicate scores within and
        # ACROSS shards, so the ascending-id tie-break is genuinely load
        # bearing in almost every merged row.
        scores = rng.choice([0.0, 0.25, 0.5, 1.0], size=(batch, num_services))
        bounds = random_bounds(rng, num_services, num_shards)
        shard_ids, shard_scores = shard_lists(scores, bounds, k)
        merged_ids, merged_scores = merge_top_k(shard_ids, shard_scores, k)
        expect_ids, expect_scores = reference_top_k(scores, k)
        np.testing.assert_array_equal(merged_ids, expect_ids)
        np.testing.assert_array_equal(merged_scores, expect_scores)

    @pytest.mark.parametrize("seed", range(5))
    def test_k_larger_than_rows_per_shard(self, seed):
        # Every shard holds fewer rows than k, so each contributes padding
        # and the merge must still recover the exact global list.
        rng = np.random.default_rng(100 + seed)
        num_services, num_shards, k = 11, 4, 7
        scores = rng.normal(size=(3, num_services)).round(1)
        bounds = random_bounds(rng, num_services, num_shards)
        assert max(hi - lo for lo, hi in zip(bounds[:-1], bounds[1:])) < k
        shard_ids, shard_scores = shard_lists(scores, bounds, k)
        merged_ids, merged_scores = merge_top_k(shard_ids, shard_scores, k)
        expect_ids, expect_scores = reference_top_k(scores, k)
        np.testing.assert_array_equal(merged_ids, expect_ids)
        np.testing.assert_array_equal(merged_scores, expect_scores)

    def test_k_larger_than_whole_catalogue_pads(self):
        rng = np.random.default_rng(7)
        scores = rng.normal(size=(2, 5))
        bounds = [0, 2, 5]
        k = 9
        shard_ids, shard_scores = shard_lists(scores, bounds, k)
        merged_ids, merged_scores = merge_top_k(shard_ids, shard_scores, k)
        expect_ids, expect_scores = reference_top_k(scores, k)
        np.testing.assert_array_equal(merged_ids, expect_ids)
        np.testing.assert_array_equal(merged_scores, expect_scores)
        assert (merged_ids[:, 5:] == -1).all()
        assert np.isneginf(merged_scores[:, 5:]).all()

    def test_all_scores_tied_orders_by_ascending_id(self):
        scores = np.ones((4, 20))
        bounds = [0, 4, 9, 20]
        k = 6
        shard_ids, shard_scores = shard_lists(scores, bounds, k)
        merged_ids, _ = merge_top_k(shard_ids, shard_scores, k)
        np.testing.assert_array_equal(
            merged_ids, np.tile(np.arange(k, dtype=np.int64), (4, 1))
        )

    def test_single_shard_is_identity(self):
        rng = np.random.default_rng(11)
        scores = rng.choice([0.0, 0.5], size=(3, 16))
        shard_ids, shard_scores = shard_lists(scores, [0, 16], 5)
        merged_ids, merged_scores = merge_top_k(shard_ids, shard_scores, 5)
        np.testing.assert_array_equal(merged_ids, shard_ids[0])
        np.testing.assert_array_equal(merged_scores, shard_scores[0])

    def test_padding_only_shard_never_outranks_real_candidates(self):
        # A shard reporting nothing but (-1, -inf) padding (e.g. its rows
        # were all filtered) must not displace any real candidate: a raw -1
        # id sorted ascending would otherwise win every -inf tie.
        real_ids = np.asarray([[3, 9]], dtype=np.int64)
        real_scores = np.asarray([[0.5, 0.5]])
        pad_ids = np.full((1, 2), -1, dtype=np.int64)
        pad_scores = np.full((1, 2), -np.inf)
        merged_ids, merged_scores = merge_top_k(
            [pad_ids, real_ids], [pad_scores, real_scores], 3
        )
        np.testing.assert_array_equal(merged_ids, [[3, 9, -1]])
        np.testing.assert_array_equal(merged_scores, [[0.5, 0.5, -np.inf]])
        assert shard_candidate_counts([pad_ids, real_ids]) == [0, 2]

    @pytest.mark.parametrize("seed", range(4))
    def test_candidate_counts_sum_to_gather_width(self, seed):
        rng = np.random.default_rng(200 + seed)
        scores = rng.normal(size=(2, 30)).round(1)
        bounds = random_bounds(rng, 30, 3)
        k = 40  # > catalogue: every shard contributes all rows + padding
        shard_ids, _ = shard_lists(scores, bounds, k)
        counts = shard_candidate_counts(shard_ids)
        assert sum(counts) == 2 * 30  # batch x real candidates
