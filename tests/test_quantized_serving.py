"""Tests for the quantized embedding subsystem (repro.serving.quant).

Covers the quantizers themselves (round-trip error bounds, ADC identities),
the recall floors the ROADMAP demands (int8 >= 0.95, PQ >= 0.85 vs the
exact scan), the quantized retrieval indexes behind the gateway registry,
and the versioned store publishing quantized snapshots that hot-swap with
the fp tables.
"""

import numpy as np
import pytest

from repro.eval.serving_metrics import (
    compression_report,
    memory_footprint,
    recall_at_k,
)
from repro.serving import ServingPipeline
from repro.serving.embedding_store import EmbeddingStore
from repro.serving.gateway import (
    ExactIndex,
    Int8Index,
    IVFPQIndex,
    LSHIndex,
    ServingGateway,
    VersionedEmbeddingStore,
    build_index,
    clustered_embeddings,
    index_kinds,
)
from repro.serving.quant import (
    Int8Quantizer,
    ProductQuantizer,
    kmeans,
    quantize_int8,
    quantize_pq,
    quantize_table,
)


@pytest.fixture(scope="module")
def clustered():
    """Seeded synthetic store with cluster structure (the ANN-friendly regime)."""
    return clustered_embeddings(400, 3000, 32, num_clusters=12, spread=0.18, seed=3)


@pytest.fixture(scope="module")
def exact_top10(clustered):
    queries, services = clustered
    ids, _ = ExactIndex().build(services).search(queries, 10)
    return ids


@pytest.fixture(scope="module")
def small():
    """A smaller, lower-dim workload where plain PQ stays accurate."""
    return clustered_embeddings(300, 800, 16, num_clusters=10, spread=0.25, seed=3)


# --------------------------------------------------------------------- #
# Shared k-means
# --------------------------------------------------------------------- #
class TestKMeans:
    def test_clusters_cover_points_and_are_deterministic(self, clustered):
        _, services = clustered
        centroids, assignment = kmeans(services[:500], 8, iters=5, rng=0)
        assert centroids.shape == (8, services.shape[1])
        assert assignment.shape == (500,) and set(assignment) <= set(range(8))
        centroids2, assignment2 = kmeans(services[:500], 8, iters=5, rng=0)
        assert np.array_equal(centroids, centroids2)
        assert np.array_equal(assignment, assignment2)

    def test_clamps_k_and_validates(self):
        points = np.eye(3)
        centroids, assignment = kmeans(points, 10, iters=2, rng=1)
        assert centroids.shape[0] == 3 and sorted(assignment) == [0, 1, 2]
        with pytest.raises(ValueError):
            kmeans(points, 0)
        with pytest.raises(ValueError):
            kmeans(points[0], 2)
        with pytest.raises(ValueError):
            kmeans(points, 2, init="farthest-point")

    def test_kmeanspp_init_is_deterministic_and_spreads_seeds(self, clustered):
        _, services = clustered
        pp1, _ = kmeans(services[:500], 12, iters=4, rng=0, init="kmeans++")
        pp2, _ = kmeans(services[:500], 12, iters=4, rng=0, init="kmeans++")
        assert np.array_equal(pp1, pp2)
        # On clustered data D²-weighted seeding must not collapse: the final
        # centroids stay pairwise distinct.
        gram = pp1 @ pp1.T
        sq = np.diag(gram)
        dist2 = sq[:, None] + sq[None, :] - 2 * gram
        np.fill_diagonal(dist2, np.inf)
        assert dist2.min() > 1e-8

    def test_kmeanspp_raw_adc_recall_does_not_regress(self, clustered, exact_top10):
        """Raw (un-refined) ADC scan recall with kmeans++ codebooks must not
        regress against the random-init codebooks it replaces."""
        queries, services = clustered
        probe = queries[:256]
        recalls = {}
        for init in ("random", "kmeans++"):
            table = quantize_pq(services, num_subspaces=8, seed=0, init=init)
            ids = np.argsort(-table.scores(probe), axis=1)[:, :10]
            recalls[init] = recall_at_k(ids, exact_top10[:256], 10)
        assert recalls["kmeans++"] >= recalls["random"] - 0.01


# --------------------------------------------------------------------- #
# int8 scalar quantization
# --------------------------------------------------------------------- #
class TestInt8:
    def test_round_trip_error_bounded_by_half_scale(self, clustered):
        _, services = clustered
        quantizer = Int8Quantizer().fit(services)
        decoded = quantizer.decode(quantizer.encode(services))
        bound = quantizer.scales_ / 2 + 1e-6
        assert np.all(np.abs(decoded - services) <= bound)

    def test_scale_folding_identity(self, clustered):
        queries, services = clustered
        table = quantize_int8(services)
        folded = (queries[:8].astype(np.float32) * table.scales) \
            @ table.codes.astype(np.float32).T
        direct = queries[:8].astype(np.float32) @ table.decode().T
        assert np.allclose(folded, direct, atol=1e-3)

    def test_zero_column_decodes_to_exact_zero(self):
        vectors = np.random.default_rng(0).normal(size=(50, 4))
        vectors[:, 2] = 0.0
        table = quantize_int8(vectors)
        assert np.all(table.decode()[:, 2] == 0.0)

    def test_table_memory_and_views(self, clustered):
        _, services = clustered
        table = quantize_int8(services)
        assert table.nbytes == services.size + 4 * services.shape[1]
        assert table.nbytes * 4 < services.astype(np.float32).nbytes * 1.01
        view = table.rows(100, 200)
        assert view.codes.base is not None  # zero copy
        assert np.array_equal(view.decode(), table.decode()[100:200])
        with pytest.raises(ValueError):
            table.codes[0, 0] = 1  # frozen

    def test_scores_chunking_matches_unchunked(self, clustered):
        queries, services = clustered
        table = quantize_int8(services)
        chunked = table.scores(queries[:16], chunk=100)
        whole = table.scores(queries[:16], chunk=10 ** 9)
        assert np.allclose(chunked, whole)

    def test_int8_recall_floor(self, clustered, exact_top10):
        queries, services = clustered
        ids, _ = Int8Index().build(services).search(queries, 10)
        assert recall_at_k(ids, exact_top10, 10) >= 0.95


# --------------------------------------------------------------------- #
# Product quantization
# --------------------------------------------------------------------- #
class TestProductQuantizer:
    def test_codes_shape_and_dtype(self, small):
        _, services = small
        pq = ProductQuantizer(num_subspaces=8, seed=0).fit(services)
        codes = pq.encode(services)
        assert codes.shape == (services.shape[0], 8) and codes.dtype == np.uint8

    def test_adc_equals_decoded_inner_product(self, small):
        queries, services = small
        pq = ProductQuantizer(num_subspaces=8, seed=0).fit(services)
        codes = pq.encode(services[:60])
        tables = pq.adc_tables(queries[:5])
        adc = pq.adc_scores(tables, codes)
        direct = queries[:5].astype(np.float32) @ pq.decode(codes).T
        assert np.allclose(adc, direct, atol=1e-4)

    def test_more_subspaces_reduce_reconstruction_error(self, clustered):
        _, services = clustered
        errors = []
        for m in (4, 16):
            pq = ProductQuantizer(num_subspaces=m, seed=0).fit(services)
            decoded = pq.decode(pq.encode(services))
            errors.append(float(np.mean((decoded - services) ** 2)))
        assert errors[1] < errors[0]

    def test_dim_padding_round_trips(self):
        vectors = np.random.default_rng(1).normal(size=(300, 18))  # 18 % 8 != 0
        pq = ProductQuantizer(num_subspaces=8, seed=0).fit(vectors)
        decoded = pq.decode(pq.encode(vectors))
        assert decoded.shape == vectors.shape
        assert np.mean((decoded - vectors) ** 2) < np.mean(vectors ** 2)

    def test_small_catalogues_clamp_codebook(self):
        vectors = np.random.default_rng(2).normal(size=(9, 8))
        pq = ProductQuantizer(num_subspaces=4, num_centroids=256, seed=0).fit(vectors)
        assert pq.codebooks_.shape[1] == 9
        assert np.allclose(pq.decode(pq.encode(vectors)), vectors, atol=1e-5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ProductQuantizer(num_subspaces=0)
        with pytest.raises(ValueError):
            ProductQuantizer(num_centroids=1)
        with pytest.raises(ValueError):
            ProductQuantizer(num_centroids=512)  # would overflow uint8 codes

    def test_pq_recall_floor(self, small):
        queries, services = small
        exact_ids, _ = ExactIndex().build(services).search(queries, 10)
        table = quantize_pq(services, num_subspaces=8)
        ids = np.argsort(-table.scores(queries), axis=1)[:, :10]
        assert recall_at_k(ids, exact_ids, 10) >= 0.85

    def test_pq_table_memory(self, clustered):
        _, services = clustered
        table = quantize_pq(services, num_subspaces=8)
        assert table.nbytes < services.astype(np.float32).nbytes / 4
        with pytest.raises(ValueError):
            table.codes[0, 0] = 1  # frozen


# --------------------------------------------------------------------- #
# Quantized retrieval indexes
# --------------------------------------------------------------------- #
class TestIVFPQIndex:
    def test_recall_floor_with_refinement(self, clustered, exact_top10):
        queries, services = clustered
        ids, _ = IVFPQIndex(seed=0).build(services).search(queries, 10)
        assert recall_at_k(ids, exact_top10, 10) >= 0.9

    def test_refinement_lifts_recall(self, clustered, exact_top10):
        queries, services = clustered
        plain, _ = IVFPQIndex(seed=0, refine=None).build(services).search(queries, 10)
        refined, _ = IVFPQIndex(seed=0).build(services).search(queries, 10)
        assert (recall_at_k(refined, exact_top10, 10)
                > recall_at_k(plain, exact_top10, 10))

    def test_balanced_cells_partition_catalogue(self, clustered):
        _, services = clustered
        index = IVFPQIndex(seed=0, num_lists=16).build(services[:500])
        members = np.concatenate([index.cell_members(c) for c in range(index.num_cells)])
        assert sorted(members) == list(range(500))
        sizes = [index.cell_members(c).size for c in range(index.num_cells)]
        assert max(sizes) <= index.cell_size

    def test_pads_when_k_exceeds_candidates(self, clustered):
        queries, services = clustered
        index = IVFPQIndex(seed=0, num_lists=4, num_subspaces=4).build(services[:9])
        ids, scores = index.search(queries[0], 20)
        assert ids.shape == (1, 20)
        valid = ids[0] >= 0
        assert set(ids[0][valid]) <= set(range(9))
        assert np.all(np.isneginf(scores[0][~valid]))

    def test_memory_footprint_beats_fp_table(self, clustered):
        _, services = clustered
        index = IVFPQIndex(seed=0).build(services)
        assert index.nbytes < services.nbytes / 2          # even with refine table
        assert index.code_nbytes < services.nbytes / 20    # shippable codes alone

    def test_sorted_scores_and_ids_valid(self, clustered):
        queries, services = clustered
        ids, scores = IVFPQIndex(seed=0).build(services).search(queries[:32], 10)
        assert np.all(np.diff(scores, axis=1) <= 1e-6)
        assert np.all(ids >= 0) and np.all(ids < services.shape[0])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            IVFPQIndex(num_lists=0)
        with pytest.raises(ValueError):
            IVFPQIndex(refine="fp64")
        with pytest.raises(ValueError):
            IVFPQIndex(refine_factor=0)
        with pytest.raises(ValueError):
            IVFPQIndex(slack=0.5)

    def test_registry_knows_quantized_kinds(self, clustered):
        _, services = clustered
        kinds = index_kinds()
        assert "ivfpq" in kinds and "int8" in kinds and kinds[0] == "exact"
        index = build_index("ivfpq", services[:300], num_lists=8)
        assert index.num_services == 300
        assert build_index("int8", services[:300]).num_services == 300


# --------------------------------------------------------------------- #
# Vectorized LSH candidate gathering
# --------------------------------------------------------------------- #
class TestLSHBatchedProbes:
    def test_batched_candidates_match_reference_probing(self, clustered):
        queries, services = clustered
        index = LSHIndex(num_tables=4, num_bits=6, seed=0).build(services[:400])
        qs = np.asarray(queries[:16], dtype=np.float64)
        powers = 1 << np.arange(index.num_bits, dtype=np.int64)
        keys = (np.einsum("tbd,qd->tqb", index._planes, qs) > 0) @ powers
        rows, ids = index._batch_candidates(keys, qs.shape[0])
        # Reference: python-dict style probing, one query at a time.
        for row in range(qs.shape[0]):
            expected = set()
            for table in range(index.num_tables):
                probe_set = {int(keys[table, row])} | {
                    int(keys[table, row]) ^ (1 << bit) for bit in range(index.num_bits)
                }
                table_keys = index._bucket_keys[table]
                starts = index._bucket_starts[table]
                members = index._bucket_members[table]
                for key in probe_set:
                    hit = np.searchsorted(table_keys, key)
                    if hit < table_keys.size and table_keys[hit] == key:
                        expected.update(members[starts[hit]:starts[hit + 1]].tolist())
            assert set(ids[rows == row].tolist()) == expected

    def test_multiprobe_widens_candidates(self, clustered):
        queries, services = clustered
        probing = LSHIndex(num_tables=4, num_bits=8, seed=0).build(services)
        narrow = LSHIndex(num_tables=4, num_bits=8, seed=0,
                          multiprobe=False).build(services)
        ids_wide, _ = probing.search(queries[:64], 10)
        ids_narrow, _ = narrow.search(queries[:64], 10)
        exact_ids, _ = ExactIndex().build(services).search(queries[:64], 10)
        assert (recall_at_k(ids_wide, exact_ids, 10)
                >= recall_at_k(ids_narrow, exact_ids, 10))


# --------------------------------------------------------------------- #
# Versioned store: dtype + quantized snapshots
# --------------------------------------------------------------------- #
class TestQuantizedStore:
    def test_default_dtype_is_float32(self, clustered):
        queries, services = clustered
        store = VersionedEmbeddingStore(queries, services)
        snapshot = store.snapshot()
        assert snapshot.services.dtype == np.float32
        assert snapshot.queries.dtype == np.float32

    def test_dtype_override_and_validation(self, clustered):
        queries, services = clustered
        store = VersionedEmbeddingStore(queries, services, dtype=np.float64)
        assert store.snapshot().services.dtype == np.float64
        with pytest.raises(ValueError):
            VersionedEmbeddingStore(queries, services, dtype=np.int32)

    def test_publishes_quantized_tables(self, clustered):
        queries, services = clustered
        store = VersionedEmbeddingStore(
            queries, services, quantization=("int8", "pq"),
            quantization_params={"pq": {"num_subspaces": 8}},
        )
        snapshot = store.snapshot()
        int8_table = snapshot.quantized_services("int8")
        pq_table = snapshot.quantized_services("pq")
        assert int8_table.num_vectors == pq_table.num_vectors == snapshot.num_services
        assert pq_table.quantizer.num_subspaces == 8
        with pytest.raises(ValueError):
            int8_table.codes[0, 0] = 1  # immutable like the fp arrays
        with pytest.raises(KeyError):
            snapshot.quantized_services("fp8")
        with pytest.raises(ValueError):
            VersionedEmbeddingStore(queries, services, quantization=("fp8",))
        with pytest.raises(ValueError):  # params for a kind never published
            VersionedEmbeddingStore(
                queries, services, quantization=("int8",),
                quantization_params={"pq": {"num_subspaces": 8}},
            )

    def test_quantized_shard_row_alignment(self, clustered):
        queries, services = clustered
        store = VersionedEmbeddingStore(queries, services, num_shards=4,
                                        quantization=("int8",))
        snapshot = store.snapshot()
        for shard in range(snapshot.num_shards):
            ids, view = snapshot.quantized_shard("int8", shard)
            lo, hi = snapshot.shard_bounds[shard], snapshot.shard_bounds[shard + 1]
            assert np.array_equal(ids, np.arange(lo, hi))
            full = snapshot.quantized_services("int8")
            assert np.array_equal(view.codes, full.codes[lo:hi])

    def test_hot_swap_rebuilds_quantized_tables(self, clustered):
        queries, services = clustered
        store = VersionedEmbeddingStore(queries, services, quantization=("int8",))
        before = store.snapshot()
        table_before = before.quantized_services("int8")
        version = store.publish(queries, services * 0.5)
        after = store.snapshot()
        table_after = after.quantized_services("int8")
        assert after.version == version != before.version
        assert table_after is not table_before
        # the rebuilt codes track the *new* fp table, the old snapshot is intact
        assert np.allclose(table_after.decode(), after.services, atol=0.05)
        assert np.array_equal(table_before.codes, before.quantized_services("int8").codes)


# --------------------------------------------------------------------- #
# Gateway + pipeline integration
# --------------------------------------------------------------------- #
class TestQuantizedGateway:
    @staticmethod
    def make_gateway(clustered, **kwargs):
        queries, services = clustered
        store = VersionedEmbeddingStore(queries, services, num_shards=2,
                                        quantization=("int8", "pq"))
        defaults = dict(index="ivfpq", top_k=10, max_batch_size=16)
        defaults.update(kwargs)
        return ServingGateway(store, **defaults)

    def test_gateway_serves_through_ivfpq(self, clustered):
        gateway = self.make_gateway(clustered)
        assert gateway.recall_probe(k=10, num_queries=128) >= 0.9
        ranked = gateway.rank(7, 10)
        assert len(ranked) == 10 and len(set(ranked)) == 10

    def test_cache_invalidated_when_quantized_snapshot_published(self, clustered):
        queries, services = clustered
        gateway = self.make_gateway(clustered, cache_capacity=64)
        first = gateway.rank(3)
        again = gateway.rank(3)
        assert first == again and gateway.telemetry.cache_hits >= 1
        rng = np.random.default_rng(9)
        gateway.hot_swap(queries, rng.normal(size=services.shape))
        assert gateway.store.snapshot().quantized_services("int8") is not None
        swapped = gateway.rank(3)
        assert swapped != first  # new embeddings, not a stale cached result
        assert len(gateway.cache) <= 1 + 1  # old-version entries dropped

    def test_gateway_reuses_published_int8_table(self, clustered):
        for kind, getter in (("int8", lambda idx: idx.table),
                             ("ivfpq", lambda idx: idx._refine_table)):
            gateway = self.make_gateway(clustered, index=kind)
            snapshot = gateway.store.snapshot()
            index = gateway._index_for(snapshot)
            # shared object, not a second quantization of the same catalogue
            assert getter(index) is snapshot.quantized_services("int8")

    def test_prebuilt_table_shape_mismatch_rejected(self, clustered):
        _, services = clustered
        table = quantize_int8(services[:100])
        with pytest.raises(ValueError):
            Int8Index(int8_table=table).build(services)
        with pytest.raises(ValueError):
            IVFPQIndex(int8_table=table, seed=0).build(services)

    def test_pipeline_quantized_scoring_modes(self, clustered):
        queries, services = clustered
        exact = ServingPipeline(EmbeddingStore(queries, services),
                                top_k=5, scoring="inner_product")
        for mode in ("ivfpq", "int8"):
            pipeline = ServingPipeline(EmbeddingStore(queries, services),
                                       top_k=5, scoring=mode)
            overlap = len(set(pipeline.rank(3)) & set(exact.rank(3)))
            assert overlap >= 4, mode


# --------------------------------------------------------------------- #
# Memory/compression reporting
# --------------------------------------------------------------------- #
class TestCompressionReport:
    def test_report_rows(self, clustered, exact_top10):
        queries, services = clustered
        int8_table = quantize_int8(services)
        ids, _ = Int8Index().build(services).search(queries, 10)
        rows = compression_report(
            services, {"int8": int8_table},
            exact_ids=exact_top10, variant_ids={"int8": ids}, k=10,
        )
        by_table = {row["table"]: row for row in rows}
        assert by_table["baseline"]["compression_x"] == 1.0
        assert by_table["int8"]["compression_x"] > 7.9  # fixture is float64
        assert by_table["int8"]["recall_at_k"] >= 0.95

    def test_memory_footprint_validation(self):
        assert memory_footprint(np.zeros((4, 4))) == 128
        with pytest.raises(TypeError):
            memory_footprint(object())

    def test_quantize_table_factory(self, small):
        _, services = small
        assert quantize_table("int8", services).kind == "int8"
        assert quantize_table("pq", services, num_subspaces=4).kind == "pq"
        with pytest.raises(ValueError):
            quantize_table("fp4", services)
        with pytest.raises(ValueError):
            quantize_table("int8", services, num_subspaces=4)
