"""Tests for anchor-pair mining and the KTCL / SECL / IGCL contrastive losses."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.data.schema import CORRELATION_ATTRIBUTES
from repro.models.garcia import contrastive
from repro.models.garcia.anchor_pairs import anchor_mapping, coverage, mine_anchor_pairs


class TestAnchorPairMining:
    def test_pairs_map_tail_to_head(self, tiny_scenario):
        pairs = mine_anchor_pairs(
            tiny_scenario.dataset, tiny_scenario.head_tail, tiny_scenario.forest,
            min_shared_attributes=1,
        )
        assert pairs, "expected at least one anchor pair on the tiny scenario"
        for tail_id, pair in pairs.items():
            assert tiny_scenario.head_tail.is_tail(tail_id)
            assert tiny_scenario.head_tail.is_head(pair.head_query_id)
            assert pair.tail_query_id == tail_id

    def test_shared_attribute_criterion_enforced(self, tiny_scenario):
        pairs = mine_anchor_pairs(
            tiny_scenario.dataset, tiny_scenario.head_tail, tiny_scenario.forest,
            min_shared_attributes=2,
        )
        for tail_id, pair in pairs.items():
            tail_query = tiny_scenario.dataset.query_by_id(tail_id)
            head_query = tiny_scenario.dataset.query_by_id(pair.head_query_id)
            shared = sum(
                1 for key in CORRELATION_ATTRIBUTES
                if tail_query.attributes.get(key) == head_query.attributes.get(key)
            )
            assert shared >= 2
            assert pair.shared_attributes == shared

    def test_strict_threshold_reduces_coverage(self, tiny_scenario):
        loose = mine_anchor_pairs(tiny_scenario.dataset, tiny_scenario.head_tail,
                                  tiny_scenario.forest, min_shared_attributes=1)
        strict = mine_anchor_pairs(tiny_scenario.dataset, tiny_scenario.head_tail,
                                   tiny_scenario.forest, min_shared_attributes=3)
        assert len(strict) <= len(loose)
        assert coverage(strict, tiny_scenario.head_tail) <= coverage(loose, tiny_scenario.head_tail)

    def test_exposure_breaks_ties(self, tiny_scenario):
        """Among equally relevant head candidates the most exposed one wins."""
        pairs = mine_anchor_pairs(tiny_scenario.dataset, tiny_scenario.head_tail,
                                  tiny_scenario.forest, min_shared_attributes=0)
        dataset = tiny_scenario.dataset
        forest = tiny_scenario.forest
        from repro.models.garcia.anchor_pairs import _semantic_relevance

        for tail_id, pair in list(pairs.items())[:25]:
            tail_query = dataset.query_by_id(tail_id)
            chosen = dataset.query_by_id(pair.head_query_id)
            for head_id in tiny_scenario.head_tail.head_query_ids:
                other = dataset.query_by_id(head_id)
                other_score = _semantic_relevance(tail_query.intention_id, other.intention_id, forest)
                other_score += 0.25 * sum(
                    1 for key in CORRELATION_ATTRIBUTES
                    if tail_query.attributes.get(key) == other.attributes.get(key)
                )
                if other_score > pair.semantic_score:
                    pytest.fail("a more relevant head candidate was skipped")
                if other_score == pair.semantic_score and other.frequency > chosen.frequency:
                    pytest.fail("a more exposed equally-relevant head candidate was skipped")

    def test_anchor_mapping_and_negative_validation(self, tiny_scenario):
        pairs = mine_anchor_pairs(tiny_scenario.dataset, tiny_scenario.head_tail, tiny_scenario.forest)
        mapping = anchor_mapping(pairs)
        assert set(mapping) == set(pairs)
        with pytest.raises(ValueError):
            mine_anchor_pairs(tiny_scenario.dataset, tiny_scenario.head_tail,
                              tiny_scenario.forest, min_shared_attributes=-1)


class TestKTCL:
    def test_query_loss_lower_when_anchor_matches(self, rng):
        tails = Tensor(rng.normal(size=(6, 8)))
        aligned = Tensor(tails.numpy() + 0.01 * rng.normal(size=(6, 8)))
        random_heads = Tensor(rng.normal(size=(6, 8)))
        negatives = Tensor(rng.normal(size=(10, 8)))
        good = contrastive.ktcl_query_loss(tails, aligned, negatives, temperature=0.1).item()
        bad = contrastive.ktcl_query_loss(tails, random_heads, negatives, temperature=0.1).item()
        assert good < bad

    def test_query_loss_without_batch_heads_falls_back_to_in_batch(self, rng):
        tails = Tensor(rng.normal(size=(5, 8)))
        heads = Tensor(rng.normal(size=(5, 8)))
        loss = contrastive.ktcl_query_loss(tails, heads, None, temperature=0.2)
        assert np.isfinite(loss.item())

    def test_service_loss_symmetric_and_positive(self, rng):
        head_view = Tensor(rng.normal(size=(7, 8)))
        tail_view = Tensor(rng.normal(size=(7, 8)))
        loss = contrastive.ktcl_service_loss(head_view, tail_view, temperature=0.2)
        assert loss.item() > 0

    def test_service_loss_lower_for_aligned_views(self, rng):
        base = rng.normal(size=(7, 8))
        aligned = contrastive.ktcl_service_loss(
            Tensor(base), Tensor(base + 0.01 * rng.normal(size=(7, 8))), temperature=0.1
        ).item()
        misaligned = contrastive.ktcl_service_loss(
            Tensor(base), Tensor(rng.normal(size=(7, 8))), temperature=0.1
        ).item()
        assert aligned < misaligned


class TestSECL:
    def test_loss_positive_and_averaged_over_layers(self, rng):
        layer0 = Tensor(rng.normal(size=(20, 8)))
        layer1 = Tensor(rng.normal(size=(20, 8)))
        layer2 = Tensor(rng.normal(size=(20, 8)))
        nodes = np.arange(10)
        loss = contrastive.secl_loss([layer0, layer1, layer2], nodes, temperature=0.2)
        assert loss.item() > 0

    def test_aligned_layers_give_lower_loss(self, rng):
        layer0 = Tensor(rng.normal(size=(16, 8)))
        aligned = Tensor(layer0.numpy() + 0.01 * rng.normal(size=(16, 8)))
        shuffled = Tensor(rng.permutation(layer0.numpy()))
        nodes = np.arange(16)
        good = contrastive.secl_loss([layer0, aligned], nodes, temperature=0.1).item()
        bad = contrastive.secl_loss([layer0, shuffled], nodes, temperature=0.1).item()
        assert good < bad

    def test_empty_node_selection_gives_zero(self, rng):
        layers = [Tensor(rng.normal(size=(5, 4))), Tensor(rng.normal(size=(5, 4)))]
        assert contrastive.secl_loss(layers, np.zeros(0, dtype=np.int64), 0.1).item() == 0.0

    def test_requires_at_least_one_propagation_layer(self, rng):
        with pytest.raises(ValueError):
            contrastive.secl_loss([Tensor(rng.normal(size=(4, 4)))], np.arange(2), 0.1)


class TestIGCL:
    def test_build_pairs_structure(self, tiny_forest, rng):
        intentions = [tiny_forest.nodes_at_level(tiny_forest.max_level)[0]] * 3
        anchors, positives, negatives, weights = contrastive.build_igcl_pairs(
            intentions, tiny_forest, num_negatives=4, rng=rng
        )
        assert anchors.shape == positives.shape == weights.shape
        assert negatives.shape == (len(anchors), 4)
        # Each entity's chain weights sum to one.
        for row in np.unique(anchors):
            assert weights[anchors == row].sum() == pytest.approx(1.0)

    def test_build_pairs_respects_max_level(self, tiny_forest, rng):
        leaf = int(tiny_forest.nodes_at_level(tiny_forest.max_level)[0])
        full = contrastive.build_igcl_pairs([leaf], tiny_forest, 2, rng, max_level=None)
        truncated = contrastive.build_igcl_pairs([leaf], tiny_forest, 2, rng, max_level=1)
        assert len(truncated[0]) == 1
        assert len(full[0]) == tiny_forest.level(leaf)

    def test_loss_lower_when_entity_matches_its_intentions(self, tiny_forest, rng):
        dim = 8
        intention_repr = Tensor(rng.normal(size=(tiny_forest.num_intentions, dim)))
        leaf = int(tiny_forest.nodes_at_level(tiny_forest.max_level)[0])
        anchors, positives, negatives, weights = contrastive.build_igcl_pairs(
            [leaf], tiny_forest, num_negatives=5, rng=rng
        )
        matched_entity = Tensor(intention_repr.numpy()[[leaf]])
        random_entity = Tensor(rng.normal(size=(1, dim)))
        good = contrastive.igcl_loss(matched_entity, intention_repr, anchors, positives,
                                     negatives, weights, temperature=0.1).item()
        bad = contrastive.igcl_loss(random_entity, intention_repr, anchors, positives,
                                    negatives, weights, temperature=0.1).item()
        assert good < bad

    def test_empty_pairs_give_zero_loss(self, rng):
        empty = np.zeros(0, dtype=np.int64)
        loss = contrastive.igcl_loss(
            Tensor(rng.normal(size=(1, 4))), Tensor(rng.normal(size=(3, 4))),
            empty, empty, np.zeros((0, 2), dtype=np.int64), np.zeros(0), temperature=0.1,
        )
        assert loss.item() == 0.0

    def test_gradients_flow_through_igcl(self, tiny_forest, rng):
        dim = 6
        entity = Tensor(rng.normal(size=(2, dim)), requires_grad=True)
        intention_repr = Tensor(rng.normal(size=(tiny_forest.num_intentions, dim)), requires_grad=True)
        leaves = tiny_forest.nodes_at_level(tiny_forest.max_level)[:2]
        anchors, positives, negatives, weights = contrastive.build_igcl_pairs(
            [int(leaf) for leaf in leaves], tiny_forest, num_negatives=3, rng=rng
        )
        loss = contrastive.igcl_loss(entity, intention_repr, anchors, positives, negatives,
                                     weights, temperature=0.2)
        loss.backward()
        assert entity.grad is not None and intention_repr.grad is not None
