"""Fault-matrix tier for wire snapshot replication.

The wire path (``repro.serving.snapshot.transport``) is only trustworthy
under systematic damage, so this tier drives every fault the protocol
claims to survive — {kill between chunk N and N+1, truncated chunk frame,
flipped payload byte, server death mid-fetch, fetch racing a concurrent
publish} — against both a **cold** host (empty durable dir) and a
**partially-hydrated** host (a previous fetch died mid-stream).  Every
case must either complete bit-identically to the source directory or fail
with a typed :class:`ReplicationError`, leaving the local directory at
its last good version (mirroring the PR 8 crash-safety contract).
"""

import socket

import numpy as np
import pytest

from repro.serving.fleet.replica import FleetReplica
from repro.serving.gateway.gateway import deploy_gateway
from repro.serving.gateway.store import VersionedEmbeddingStore
from repro.serving.snapshot import (
    ReplicationError,
    ReplicationIntegrityError,
    ReplicationUnavailableError,
    SnapshotError,
    SnapshotFetcher,
    SnapshotIntegrityError,
    SnapshotServer,
    list_versions,
    pin_version,
    pinned_versions,
    prune,
    read_pointer,
    unpin_version,
)

DIM = 8


class KilledFetch(RuntimeError):
    """Stands in for a process death between two landed chunks."""


# --------------------------------------------------------------------- #
# Builders
# --------------------------------------------------------------------- #
def make_source(tmp_path, seed=7, keep_last=None, versions=1):
    """A durable source store with enough chunks for mid-fetch faults."""
    rng = np.random.default_rng(seed)
    src = tmp_path / "src"
    src.mkdir(exist_ok=True)
    queries = rng.standard_normal((24, DIM)).astype(np.float32)
    services = rng.standard_normal((96, DIM)).astype(np.float32)
    store = VersionedEmbeddingStore(
        queries, services, num_shards=2, quantization=("int8",),
        durable_dir=str(src), durable_rows_per_chunk=32, keep_last=keep_last,
    )
    for _ in range(versions - 1):
        services = services.copy()
        services[:8] += rng.standard_normal((8, DIM)).astype(np.float32)
        store.publish(queries, services)
    return store, src


def kill_after(n):
    """Observer that raises once ``n`` chunks have landed durably."""
    seen = {"count": 0}

    def observer(chunk_id, nbytes):
        seen["count"] += 1
        if seen["count"] >= n:
            raise KilledFetch(f"process died after chunk {n}")

    return observer


def counting_filter(counts):
    """Server-side transfer counter: the honest wire-level tally."""

    def chunk_filter(chunk_id, raw):
        counts[chunk_id] = counts.get(chunk_id, 0) + 1
        return raw

    return chunk_filter


def dir_files(root):
    """Relative path -> bytes for every file under a durable dir."""
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


def assert_bit_identical(src, dst):
    """The destination holds byte-for-byte what the source holds."""
    src_files, dst_files = dir_files(src), dir_files(dst)
    assert set(src_files) == set(dst_files)
    for rel, payload in src_files.items():
        assert dst_files[rel] == payload, f"{rel} differs after replication"


def assert_live_version_identical(src, dst):
    """The destination's live version closure is byte-for-byte the source's.

    Replication moves *versions*, not directory history — a source that
    kept older manifests on disk ships only its live manifest, sidecars,
    and referenced chunks.
    """
    from repro.serving.snapshot import load_manifest
    from repro.serving.snapshot.manifest import MANIFEST_DIR, _referenced_chunks

    rel = read_pointer(src)
    assert read_pointer(dst) == rel
    manifest = load_manifest(src, rel)
    version = int(manifest["version"])
    wanted = [rel] + [
        f"{MANIFEST_DIR}/{p.name}"
        for p in sorted((src / MANIFEST_DIR).glob(f"v{version}-index-*.json"))
    ]
    chunk_ids = set(_referenced_chunks(manifest))
    for side in wanted[1:]:
        chunk_ids |= _referenced_chunks(load_manifest(src, side))
    wanted += [f"chunks/{chunk_id}.chunk" for chunk_id in sorted(chunk_ids)]
    for member in wanted:
        assert (dst / member).read_bytes() == (src / member).read_bytes(), (
            f"{member} differs after replication"
        )


def make_host(kind, tmp_path, server):
    """A destination dir in one of the matrix's host states."""
    dst = tmp_path / f"dst_{kind}"
    dst.mkdir(exist_ok=True)
    if kind == "partial":
        # A previous hydration died between chunk 1 and chunk 2: some
        # chunks landed, no manifest, no pointer — the resume case.
        fetcher = SnapshotFetcher(server.address, dst, observer=kill_after(1))
        with pytest.raises(KilledFetch):
            fetcher.fetch()
        assert any(dst.glob("chunks/*.chunk"))
        assert not (dst / "MANIFEST").exists()
    return dst


def assert_last_good_state(dst, before):
    """A failed fetch must leave the dir exactly as it found it, modulo
    extra *verified* chunks (which are harmless and enable the resume)."""
    after = dir_files(dst)
    for rel, payload in before.items():
        assert after.get(rel) == payload, f"{rel} changed across a failed fetch"
    for rel in after:
        if rel not in before:
            assert rel.startswith("chunks/"), f"unexpected non-chunk file {rel}"
    if "MANIFEST" not in before:
        assert not (dst / "MANIFEST").exists()


HOST_STATES = ["cold", "partial"]


# --------------------------------------------------------------------- #
# Round trip
# --------------------------------------------------------------------- #
class TestReplicationRoundTrip:
    def test_cold_fetch_is_bit_identical(self, tmp_path):
        _store, src = make_source(tmp_path)
        dst = tmp_path / "dst"
        dst.mkdir()
        with SnapshotServer(src) as server:
            report = SnapshotFetcher(server.address, dst).fetch()
        assert report.flipped and report.chunks_fetched > 0
        assert_bit_identical(src, dst)
        assert read_pointer(dst) == read_pointer(src)

    def test_refetch_transfers_nothing(self, tmp_path):
        _store, src = make_source(tmp_path)
        dst = tmp_path / "dst"
        dst.mkdir()
        counts = {}
        with SnapshotServer(src, chunk_filter=counting_filter(counts)) as server:
            SnapshotFetcher(server.address, dst).fetch()
            first = dict(counts)
            report = SnapshotFetcher(server.address, dst).fetch()
        assert report.chunks_fetched == 0 and report.bytes_fetched == 0
        assert counts == first, "an already-hydrated host re-transferred chunks"

    def test_delta_fetch_moves_only_changed_chunks(self, tmp_path):
        store, src = make_source(tmp_path)
        dst = tmp_path / "dst"
        dst.mkdir()
        with SnapshotServer(src) as server:
            cold = SnapshotFetcher(server.address, dst).fetch()
            snapshot = store.snapshot()
            services = np.asarray(snapshot.services).copy()
            services[:4] += 0.25  # touches one service chunk per shard table
            store.publish(np.asarray(snapshot.queries).copy(), services)
            delta = SnapshotFetcher(server.address, dst).fetch()
        assert delta.version == cold.version + 1
        assert 0 < delta.chunks_fetched < cold.chunks_fetched
        assert delta.chunks_already_local > 0
        assert_bit_identical(src, dst)

    def test_hydrated_store_restores_identically(self, tmp_path):
        _store, src = make_source(tmp_path)
        dst = tmp_path / "dst"
        dst.mkdir()
        with SnapshotServer(src) as server:
            SnapshotFetcher(server.address, dst).fetch()
        a = VersionedEmbeddingStore.restore(str(src)).snapshot()
        b = VersionedEmbeddingStore.restore(str(dst)).snapshot()
        assert a.version == b.version
        assert np.array_equal(np.asarray(a.queries), np.asarray(b.queries))
        assert np.array_equal(np.asarray(a.services), np.asarray(b.services))
        assert a.shard_bounds == b.shard_bounds
        int8_a, int8_b = a.quantized["int8"], b.quantized["int8"]
        assert np.array_equal(np.asarray(int8_a.codes), np.asarray(int8_b.codes))

    def test_empty_disk_gateway_boots_from_peer(self, tmp_path):
        store, src = make_source(tmp_path)
        dst = tmp_path / "dst"
        dst.mkdir()
        with SnapshotServer(src) as server:
            gateway = deploy_gateway(warm_start=str(dst),
                                     remote_peer=server.address)
        try:
            assert gateway.store.version == store.version
            ids, _scores = gateway.search(3, k=5)
            assert len(ids) == 5
        finally:
            gateway.close()
        assert_bit_identical(src, dst)

    def test_remote_peer_requires_warm_start_dir(self, tmp_path):
        with pytest.raises(ValueError, match="warm_start"):
            deploy_gateway(remote_peer=("127.0.0.1", 1))

    def test_replica_revives_over_the_wire(self, tmp_path):
        store, src = make_source(tmp_path, versions=2)
        boot = tmp_path / "boot"
        boot.mkdir()
        with SnapshotServer(src) as server:
            gateway = deploy_gateway(warm_start=str(boot),
                                     remote_peer=server.address)
            try:
                replica = FleetReplica("r1", gateway)
                replica.kill()
                fresh = tmp_path / "fresh"
                fresh.mkdir()
                version = replica.revive(warm_start=str(fresh),
                                         remote_peer=server.address)
            finally:
                gateway.close()
        assert version == store.version
        assert_live_version_identical(src, fresh)

    def test_fetch_never_moves_a_host_backwards(self, tmp_path):
        store, src = make_source(tmp_path, versions=3)
        dst = tmp_path / "dst"
        dst.mkdir()
        with SnapshotServer(src) as server:
            SnapshotFetcher(server.address, dst).fetch()
            newer = read_pointer(dst)
            report = SnapshotFetcher(server.address, dst).fetch(version=0)
        assert report.version == 0 and report.flipped is False
        assert read_pointer(dst) == newer


# --------------------------------------------------------------------- #
# Fault matrix
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("host", HOST_STATES)
class TestFaultMatrix:
    def test_kill_between_chunks_then_resume(self, tmp_path, host):
        _store, src = make_source(tmp_path)
        counts = {}
        with SnapshotServer(src, chunk_filter=counting_filter(counts)) as server:
            dst = make_host(host, tmp_path, server)
            before = dir_files(dst)
            fetcher = SnapshotFetcher(server.address, dst,
                                      observer=kill_after(2))
            with pytest.raises(KilledFetch):
                fetcher.fetch()
            assert_last_good_state(dst, before)
            landed = {path.stem for path in dst.glob("chunks/*.chunk")}
            # The resume transfers nothing that already landed durably.
            SnapshotFetcher(server.address, dst).fetch()
        assert_bit_identical(src, dst)
        for chunk_id in landed:
            assert counts.get(chunk_id, 0) <= 1, (
                f"chunk {chunk_id} crossed the wire twice across a resume"
            )

    def test_truncated_chunk_frame_fails_typed(self, tmp_path, host):
        _store, src = make_source(tmp_path)

        def truncate(chunk_id, raw):
            return raw[: len(raw) - 9]

        with SnapshotServer(src) as setup_server:
            dst = make_host(host, tmp_path, setup_server)
        before = dir_files(dst)
        with SnapshotServer(src, chunk_filter=truncate) as server:
            fetcher = SnapshotFetcher(server.address, dst, retries=2,
                                      backoff_s=0.01)
            with pytest.raises(ReplicationIntegrityError):
                fetcher.fetch()
        assert dir_files(dst) == before  # nothing unverified may land

    def test_flipped_payload_byte_fails_typed(self, tmp_path, host):
        _store, src = make_source(tmp_path)

        def flip_bit(chunk_id, raw):
            body = bytearray(raw)
            body[-1] ^= 0x40  # damage the payload, keep the length
            return bytes(body)

        with SnapshotServer(src) as setup_server:
            dst = make_host(host, tmp_path, setup_server)
        before = dir_files(dst)
        with SnapshotServer(src, chunk_filter=flip_bit) as server:
            fetcher = SnapshotFetcher(server.address, dst, retries=2,
                                      backoff_s=0.01)
            with pytest.raises(ReplicationIntegrityError):
                fetcher.fetch()
        assert dir_files(dst) == before

    def test_server_death_mid_fetch_fails_typed(self, tmp_path, host):
        _store, src = make_source(tmp_path)
        server = SnapshotServer(src)
        server.start()
        try:
            dst = make_host(host, tmp_path, server)
            before = dir_files(dst)

            def die(chunk_id, nbytes):
                server.stop()

            fetcher = SnapshotFetcher(server.address, dst, retries=2,
                                      backoff_s=0.01, observer=die)
            with pytest.raises(ReplicationUnavailableError):
                fetcher.fetch()
        finally:
            server.stop()
        assert_last_good_state(dst, before)

    def test_fetch_racing_concurrent_publish(self, tmp_path, host):
        store, src = make_source(tmp_path, keep_last=1)
        with SnapshotServer(src) as server:
            dst = make_host(host, tmp_path, server)
            pinned_version = store.version
            published = {"done": False}

            def publish_midway(chunk_id, nbytes):
                if published["done"]:
                    return
                published["done"] = True
                snapshot = store.snapshot()
                services = np.asarray(snapshot.services).copy() + 0.5
                store.publish(np.asarray(snapshot.queries).copy(), services)

            fetcher = SnapshotFetcher(server.address, dst,
                                      observer=publish_midway)
            report = fetcher.fetch()
            assert published["done"], "the racing publish never ran"
            assert report.version == pinned_version
            # The fetched (old) version must be complete and openable even
            # though keep_last=1 pruning ran on the source mid-stream.
            restored = VersionedEmbeddingStore.restore(str(dst),
                                                       version=pinned_version)
            assert restored.version == pinned_version
            # A follow-up fetch converges on the new live version.
            SnapshotFetcher(server.address, dst).fetch()
        assert read_pointer(dst) == read_pointer(src)

    def test_transient_fault_heals_within_retries(self, tmp_path, host):
        _store, src = make_source(tmp_path)
        failed = {"done": False}

        def fail_once(chunk_id, raw):
            if not failed["done"]:
                failed["done"] = True
                return raw[: len(raw) // 2]
            return raw

        with SnapshotServer(src) as setup_server:
            dst = make_host(host, tmp_path, setup_server)
        failed["done"] = False
        with SnapshotServer(src, chunk_filter=fail_once) as server:
            report = SnapshotFetcher(server.address, dst, retries=3,
                                     backoff_s=0.01).fetch()
        assert report.retries >= 1
        assert_bit_identical(src, dst)


# --------------------------------------------------------------------- #
# Error taxonomy
# --------------------------------------------------------------------- #
class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(ReplicationError, SnapshotError)
        assert issubclass(ReplicationIntegrityError, SnapshotIntegrityError)
        assert issubclass(ReplicationUnavailableError, ConnectionError)

    def test_unreachable_peer_is_typed(self, tmp_path):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        fetcher = SnapshotFetcher(("127.0.0.1", free_port), tmp_path,
                                  retries=2, backoff_s=0.01)
        with pytest.raises(ReplicationUnavailableError):
            fetcher.fetch()

    def test_missing_version_is_typed(self, tmp_path):
        _store, src = make_source(tmp_path)
        dst = tmp_path / "dst"
        dst.mkdir()
        with SnapshotServer(src) as server:
            fetcher = SnapshotFetcher(server.address, dst, retries=2,
                                      backoff_s=0.01)
            with pytest.raises(ReplicationError):
                fetcher.fetch(version=99)
        assert not (dst / "MANIFEST").exists()

    def test_failed_wire_boot_falls_back_to_model(self, tmp_path):
        class TinyModel:
            def query_embeddings(self):
                return np.zeros((4, DIM), dtype=np.float32)

            def service_embeddings(self):
                return np.eye(DIM, dtype=np.float32)

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        dst = tmp_path / "dst"
        dst.mkdir()
        with pytest.warns(RuntimeWarning, match="warm start"):
            gateway = deploy_gateway(model=TinyModel(), warm_start=str(dst),
                                     remote_peer=("127.0.0.1", free_port))
        try:
            assert gateway.store.num_services == DIM
        finally:
            gateway.close()


# --------------------------------------------------------------------- #
# Prune / pin interaction (regression for prune-during-fetch)
# --------------------------------------------------------------------- #
class TestPruneDuringFetch:
    def test_pin_shields_version_from_prune(self, tmp_path):
        store, src = make_source(tmp_path, versions=3)
        pin_version(src, 0)
        try:
            prune(src, keep_versions=1)
            assert 0 in list_versions(src)
            restored = VersionedEmbeddingStore.restore(str(src), version=0)
            assert restored.version == 0
        finally:
            unpin_version(src, 0)
        prune(src, keep_versions=1)
        assert 0 not in list_versions(src)

    def test_unpin_is_refcounted(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        pin_version(src, 5)
        pin_version(src, 5)
        unpin_version(src, 5)
        assert pinned_versions(src) == {5}
        unpin_version(src, 5)
        assert pinned_versions(src) == set()
        unpin_version(src, 5)  # idempotent past zero
        assert pinned_versions(src) == set()

    def test_server_pins_release_after_fetch(self, tmp_path):
        _store, src = make_source(tmp_path)
        dst = tmp_path / "dst"
        dst.mkdir()
        with SnapshotServer(src) as server:
            SnapshotFetcher(server.address, dst).fetch()
            assert server.pinned_count() == 0
        assert pinned_versions(src) == set()

    def test_keep_last_prune_spares_mid_stream_manifest(self, tmp_path):
        store, src = make_source(tmp_path, keep_last=1)
        dst = tmp_path / "dst"
        dst.mkdir()
        streamed = store.version
        with SnapshotServer(src) as server:

            def publish_twice(chunk_id, nbytes):
                if store.version != streamed:
                    return
                snapshot = store.snapshot()
                queries = np.asarray(snapshot.queries).copy()
                services = np.asarray(snapshot.services).copy()
                store.publish(queries, services + 0.25)
                store.publish(queries, services + 0.75)

            report = SnapshotFetcher(server.address, dst,
                                     observer=publish_twice).fetch()
            assert store.version == streamed + 2  # both prunes really ran
            assert report.version == streamed
        # Once the session unpinned, the old version is prunable again.
        prune(src, keep_versions=1)
        assert list_versions(src) == [streamed + 2]
