"""Tests for the sharded serving tier: scatter/gather merging, worker
lifecycle, two-phase hot-swap atomicity, per-shard telemetry and the
process-pool backend."""

import threading

import numpy as np
import pytest

from repro.serving import ServingPipeline
from repro.serving.embedding_store import EmbeddingStore
from repro.serving.gateway import (
    ExactIndex,
    ServingGateway,
    SnapshotListener,
    StaleVersionError,
    VersionedEmbeddingStore,
    clustered_embeddings,
    deploy_gateway,
)
from repro.serving.sharded import (
    ProcessPool,
    SerialPool,
    ShardedGateway,
    ShardedRetriever,
    ShardWorker,
    ThreadPool,
    make_pool,
    merge_top_k,
    resolve_workers,
    shard_candidate_counts,
)

NUM_QUERIES, NUM_SERVICES, DIM = 400, 3000, 32


@pytest.fixture(scope="module")
def clustered():
    return clustered_embeddings(
        NUM_QUERIES, NUM_SERVICES, DIM, num_clusters=12, spread=0.18, seed=3
    )


@pytest.fixture(scope="module")
def quantized_store(clustered):
    queries, services = clustered
    return VersionedEmbeddingStore(
        queries, services, num_shards=4, quantization=("int8", "pq")
    )


def single_gateway(clustered, index, **kwargs):
    queries, services = clustered
    store = VersionedEmbeddingStore(queries, services, num_shards=1,
                                    quantization=("int8",))
    return ServingGateway(store, index=index, cache_capacity=0, **kwargs)


def sharded_gateway(clustered, index, workers="serial", num_shards=4, **kwargs):
    queries, services = clustered
    store = VersionedEmbeddingStore(queries, services, num_shards=num_shards,
                                    quantization=("int8",))
    return ShardedGateway(store, index=index, workers=workers,
                          cache_capacity=0, **kwargs)


# --------------------------------------------------------------------- #
# Exact k-way merge
# --------------------------------------------------------------------- #
class TestMergeTopK:
    def test_merge_equals_single_index_top_k(self, clustered, rng):
        queries, services = clustered
        index = ExactIndex().build(services)
        expected_ids, expected_scores = index.search(queries[:16], 10)
        bounds = [0, 700, 1500, 2100, NUM_SERVICES]
        shard_ids, shard_scores = [], []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            ids, scores = ExactIndex().build(services[lo:hi]).search(queries[:16], 10)
            shard_ids.append(np.where(ids >= 0, ids + lo, ids))
            shard_scores.append(scores)
        merged_ids, merged_scores = merge_top_k(shard_ids, shard_scores, 10)
        assert np.array_equal(merged_ids, expected_ids)
        assert np.allclose(merged_scores, expected_scores)

    def test_ties_break_by_ascending_id(self):
        ids = [np.array([[5, 3]]), np.array([[1, 9]])]
        scores = [np.array([[2.0, 1.0]]), np.array([[2.0, 1.0]])]
        merged_ids, _ = merge_top_k(ids, scores, 4)
        assert merged_ids.tolist() == [[1, 5, 3, 9]]

    def test_padding_when_k_exceeds_candidates(self):
        ids = [np.array([[4, -1]]), np.array([[7, -1]])]
        scores = [np.array([[1.0, -np.inf]]), np.array([[3.0, -np.inf]])]
        merged_ids, merged_scores = merge_top_k(ids, scores, 5)
        assert merged_ids.tolist() == [[7, 4, -1, -1, -1]]
        assert merged_scores[0, 2] == -np.inf

    def test_candidate_counts_ignore_padding(self):
        ids = [np.array([[4, -1]]), np.array([[7, 8]])]
        assert shard_candidate_counts(ids) == [1, 2]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            merge_top_k([], [], 5)
        with pytest.raises(ValueError):
            merge_top_k([np.zeros((1, 2))], [np.zeros((1, 2))], 0)


# --------------------------------------------------------------------- #
# Shard worker lifecycle
# --------------------------------------------------------------------- #
class TestShardWorker:
    def test_search_maps_global_ids(self, clustered):
        queries, services = clustered
        worker = ShardWorker(1, index="exact")
        worker.prepare(0, services[1000:2000], lo=1000)
        ids, scores = worker.search(0, queries[:4], 5)
        assert np.all((ids >= 1000) & (ids < 2000))
        expected, _ = ExactIndex().build(services[1000:2000]).search(queries[:4], 5)
        assert np.array_equal(ids, expected + 1000)

    def test_unknown_version_raises(self, clustered):
        queries, services = clustered
        worker = ShardWorker(0, index="exact")
        worker.prepare(3, services[:100], lo=0)
        with pytest.raises(StaleVersionError, match="version 7"):
            worker.search(7, queries[:2], 5)

    def test_activate_keeps_predecessor_only(self, clustered):
        _, services = clustered
        worker = ShardWorker(0, index="exact")
        for version in (1, 2, 3):
            worker.prepare(version, services[:50], lo=0)
        worker.activate(3)
        assert worker.versions == (2, 3)
        with pytest.raises(KeyError):
            worker.activate(9)

    def test_retire_drops_version(self, clustered):
        _, services = clustered
        worker = ShardWorker(0, index="exact")
        worker.prepare(5, services[:50], lo=0)
        worker.retire(5)
        assert worker.versions == ()

    def test_prepare_snapshot_owns_published_tables(self, quantized_store):
        snapshot = quantized_store.snapshot()
        worker = ShardWorker(2, index="ivfpq")
        worker.prepare_snapshot(snapshot)
        state = worker.version_state(snapshot.version)
        assert set(state.tables) == {"fp", "int8", "pq"}
        lo, hi = snapshot.shard_bounds[2], snapshot.shard_bounds[3]
        assert state.lo == lo and state.hi == hi
        assert state.tables["int8"].num_vectors == hi - lo
        assert state.nbytes > 0


# --------------------------------------------------------------------- #
# Scatter/gather parity with the single-process gateway
# --------------------------------------------------------------------- #
class TestScatterGatherParity:
    @pytest.mark.parametrize("index", ["exact", "int8"])
    def test_exact_scoring_matches_single_process(self, clustered, index):
        single = single_gateway(clustered, index)
        sharded = sharded_gateway(clustered, index, workers="serial")
        query_ids = list(range(0, 120))
        assert sharded.rank_batch(query_ids, 10) == single.rank_batch(query_ids, 10)
        sharded.close()

    def test_thread_backend_matches_serial(self, clustered):
        serial = sharded_gateway(clustered, "exact", workers="serial")
        threaded = sharded_gateway(clustered, "exact", workers="thread")
        query_ids = list(range(64))
        assert serial.rank_batch(query_ids, 10) == threaded.rank_batch(query_ids, 10)
        serial.close()
        threaded.close()

    def test_exact_recall_probe_is_one(self, clustered):
        sharded = sharded_gateway(clustered, "exact", workers="serial")
        assert sharded.recall_probe(k=10, num_queries=128, seed=1) == 1.0
        sharded.close()

    def test_ivfpq_sharded_recall_floor(self, quantized_store):
        gateway = ShardedGateway(quantized_store, index="ivfpq",
                                 workers="serial", cache_capacity=0)
        assert gateway.recall_probe(k=10, num_queries=256, seed=2) >= 0.9
        gateway.close()

    def test_ivf_sharded_recall_floor(self, clustered):
        sharded = sharded_gateway(clustered, "ivf", workers="serial")
        assert sharded.recall_probe(k=10, num_queries=256, seed=2) >= 0.85
        sharded.close()

    def test_sharded_gateway_requires_shards(self, clustered):
        queries, services = clustered
        store = VersionedEmbeddingStore(queries, services, num_shards=1)
        with pytest.raises(ValueError, match="at least 2 shards"):
            ShardedGateway(store, index="exact", workers="serial")

    def test_resolve_workers(self):
        assert resolve_workers("serial") == "serial"
        assert resolve_workers("auto") in ("thread", "process")
        with pytest.raises(ValueError):
            resolve_workers("gpu")
        with pytest.raises(ValueError):
            make_pool("nope", 2)


# --------------------------------------------------------------------- #
# Two-phase hot-swap atomicity
# --------------------------------------------------------------------- #
class RecordingListener(SnapshotListener):
    """Observes listener callbacks and the store version they ran at."""

    def __init__(self, store):
        self.store = store
        self.events = []

    def prepare(self, snapshot):
        # During prepare the *old* version must still be current.
        self.events.append(("prepare", snapshot.version, self.store.version))

    def activate(self, snapshot):
        self.events.append(("activate", snapshot.version, self.store.version))

    def retire(self, version):
        self.events.append(("retire", version, self.store.version))


class ExplodingListener(SnapshotListener):
    """Subscribes cleanly, then fails every later prepare (publish path)."""

    def prepare(self, snapshot):
        if snapshot.version > 0:
            raise RuntimeError("prepare failed on purpose")


class TestTwoPhaseHotSwap:
    def test_prepare_runs_before_flip_activate_after(self, rng):
        queries = rng.normal(size=(20, 8))
        services = rng.normal(size=(50, 8))
        store = VersionedEmbeddingStore(queries, services, num_shards=2)
        listener = RecordingListener(store)
        store.subscribe(listener)
        assert listener.events == [("prepare", 0, 0), ("activate", 0, 0)]
        store.publish(queries * 2, services * 2)
        assert listener.events[2:] == [("prepare", 1, 0), ("activate", 1, 1)]

    def test_failed_prepare_aborts_publish(self, rng):
        queries = rng.normal(size=(20, 8))
        services = rng.normal(size=(50, 8))
        store = VersionedEmbeddingStore(queries, services, num_shards=2)
        recorder = RecordingListener(store)
        store.subscribe(recorder)
        store.subscribe(ExplodingListener())
        with pytest.raises(RuntimeError, match="on purpose"):
            store.publish(queries * 2, services * 2)
        # The flip never happened and the prepared listener retired v1.
        assert store.version == 0
        assert recorder.events[-1] == ("retire", 1, 0)
        # The store still serves and can publish once the bad listener left.
        store.unsubscribe(recorder)

    def test_workers_never_serve_mixed_versions(self, clustered):
        """Concurrent publishes + reads: every batch is answered at exactly
        one version and matches that version's exact ranking."""
        queries, services = clustered
        store = VersionedEmbeddingStore(queries[:100], services[:800], num_shards=4)
        gateway = ShardedGateway(store, index="exact", workers="thread",
                                 cache_capacity=0)
        expected = {0: ServingGateway(
            VersionedEmbeddingStore(queries[:100], services[:800], num_shards=1),
            index="exact", cache_capacity=0).rank_batch(range(32), 10)}
        for version in (1, 2, 3):
            scale = 1.0 + version / 10.0
            expected[version] = ServingGateway(
                VersionedEmbeddingStore(queries[:100] * scale,
                                        services[:800] * scale, num_shards=1),
                index="exact", cache_capacity=0).rank_batch(range(32), 10)
        errors = []

        def publisher():
            try:
                for version in (1, 2, 3):
                    scale = 1.0 + version / 10.0
                    gateway.hot_swap(queries[:100] * scale, services[:800] * scale)
            except BaseException as error:  # pragma: no cover - fail loudly
                errors.append(error)

        def reader():
            try:
                for _ in range(12):
                    ranked = gateway.rank_batch(range(32), 10)
                    assert ranked in expected.values(), "mixed-version ranking"
            except BaseException as error:
                errors.append(error)

        threads = [threading.Thread(target=publisher)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        gateway.close()
        assert errors == []

    def test_predecessor_version_stays_searchable(self, clustered):
        queries, services = clustered
        store = VersionedEmbeddingStore(queries, services, num_shards=4)
        gateway = ShardedGateway(store, index="exact", workers="serial",
                                 cache_capacity=0)
        old_snapshot = store.snapshot()
        gateway.hot_swap(queries * 1.5, services * 1.5)
        # A request that pinned the pre-flip snapshot still gets answers.
        ids, scores = gateway._search_backend(old_snapshot, queries[:4], 10)
        expected, _ = ExactIndex().build(services).search(queries[:4], 10)
        assert np.array_equal(ids, expected)
        gateway.close()

    def test_mixed_version_gather_fails_loudly(self, clustered):
        queries, services = clustered
        store = VersionedEmbeddingStore(queries, services, num_shards=4)
        gateway = ShardedGateway(store, index="exact", workers="serial",
                                 cache_capacity=0)
        stale = store.snapshot()
        gateway.hot_swap(queries * 1.5, services * 1.5)
        gateway.hot_swap(queries * 2.0, services * 2.0)  # v0 retired everywhere
        with pytest.raises(Exception, match="version"):
            gateway._search_backend(stale, queries[:2], 5)
        gateway.close()


# --------------------------------------------------------------------- #
# Process pool backend
# --------------------------------------------------------------------- #
class TestProcessPool:
    @pytest.fixture(scope="class")
    def small(self):
        return clustered_embeddings(80, 600, 16, num_clusters=6, spread=0.2, seed=5)

    def test_process_matches_serial_and_survives_hot_swap(self, small):
        queries, services = small
        results = {}
        for workers in ("serial", "process"):
            store = VersionedEmbeddingStore(queries, services, num_shards=3,
                                            quantization=("int8",))
            gateway = ShardedGateway(store, index="exact", workers=workers,
                                     cache_capacity=0)
            before = gateway.rank_batch(range(40), 10)
            gateway.hot_swap(queries * 1.2, services * 1.2)
            after = gateway.rank_batch(range(40), 10)
            assert gateway.store.version == 1
            results[workers] = (before, after)
            gateway.close()
        assert results["process"] == results["serial"]

    def test_worker_error_propagates(self, small):
        queries, services = small
        store = VersionedEmbeddingStore(queries, services, num_shards=2)
        pool = ProcessPool(2, index="exact", timeout_s=30.0)
        pool.prepare(store.snapshot())
        pool.activate(store.snapshot())
        # A never-prepared version is a stale-version miss on every worker —
        # and must not desynchronise the reply pipes for later commands.
        with pytest.raises(StaleVersionError, match="version 99"):
            pool.search(99, queries[:2], 5)
        replies = pool.search(0, queries[:2], 5)
        assert [reply.version for reply in replies] == [0, 0]
        pool.close()
        pool.close()  # idempotent

    def test_pool_factory_kinds(self):
        assert isinstance(make_pool("serial", 2), SerialPool)
        pool = make_pool("thread", 2)
        assert isinstance(pool, ThreadPool)
        pool.close()

    def test_concurrent_producers_and_swaps_on_process_backend(self, small):
        """Pipe I/O must stay paired when producer threads dispatch batches
        while a publisher runs the two-phase flip (regression: interleaved
        sends/recvs handed search threads the prepare replies)."""
        import time

        queries, services = small
        store = VersionedEmbeddingStore(queries, services, num_shards=3,
                                        quantization=("int8",))
        gateway = ShardedGateway(store, index="exact", workers="process",
                                 max_batch_size=16, max_wait_s=0.002,
                                 cache_capacity=128)
        gateway.scheduler.start()
        errors, answered = [], []

        def producer(offset):
            try:
                for query_id in range(offset, 60, 3):
                    ids = gateway.submit(query_id, 5).result(timeout=10.0)[0]
                    assert len(ids) == 5
                    answered.append(query_id)
            except BaseException as error:
                errors.append(error)

        def swapper():
            try:
                for version in (1, 2):
                    time.sleep(0.02)
                    gateway.hot_swap(queries * (1 + version / 10),
                                     services * (1 + version / 10))
            except BaseException as error:
                errors.append(error)

        threads = [threading.Thread(target=producer, args=(i,))
                   for i in range(3)] + [threading.Thread(target=swapper)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        gateway.scheduler.stop()
        assert errors == []
        assert len(answered) == 60
        assert store.version == 2
        assert gateway.recall_probe(k=5, num_queries=64, seed=3) == 1.0
        gateway.close()


# --------------------------------------------------------------------- #
# Per-shard telemetry
# --------------------------------------------------------------------- #
class TestPerShardTelemetry:
    def test_shard_breakdown_sums_to_gateway_totals(self, clustered):
        gateway = sharded_gateway(clustered, "exact", workers="serial")
        gateway.rank_batch(range(96), 10)
        telemetry = gateway.telemetry
        rows = telemetry.shard_rows()
        assert len(rows) == gateway.num_shards == telemetry.num_shards
        # Every backend query is scattered to every shard ...
        assert sum(row["queries"] for row in rows) == (
            gateway.num_shards * telemetry.backend_queries
        )
        # ... and the gathered candidates decompose per shard.
        assert sum(row["candidates"] for row in rows) == telemetry.gathered_candidates
        # Exact scans always fill their k slots: the merge ranked
        # num_shards * k candidates per backend query.
        assert telemetry.gathered_candidates == (
            gateway.num_shards * 10 * telemetry.backend_queries
        )
        for row in rows:
            assert row["batches"] == rows[0]["batches"]
            assert row["busy_s"] > 0 and row["qps"] > 0
            assert row["p95_ms"] >= row["p50_ms"] >= 0
        summary = gateway.summary()
        assert summary["num_shards"] == gateway.num_shards
        assert summary["gathered_candidates"] == telemetry.gathered_candidates
        gateway.close()

    def test_scheduler_execution_stats(self, clustered):
        gateway = sharded_gateway(clustered, "exact", workers="serial")
        gateway.rank_batch(range(40), 10)
        stats = gateway.scheduler.stats()
        assert stats["batches_dispatched"] >= 1
        assert stats["requests_dispatched"] == 40
        assert stats["p95_execute_ms"] >= stats["p50_execute_ms"] > 0
        gateway.close()

    def test_unsharded_gateway_has_no_shard_rows(self, clustered):
        single = single_gateway(clustered, "exact")
        single.rank_batch(range(8), 5)
        assert single.telemetry.shard_rows() == []
        assert single.telemetry.num_shards == 0


# --------------------------------------------------------------------- #
# Pipeline + one-call deployment
# --------------------------------------------------------------------- #
class TestPipelineAndDeploy:
    def test_pipeline_sharded_scoring_matches_inner_product(self, clustered):
        queries, services = clustered
        store = EmbeddingStore(queries[:50], services[:400])
        sharded = ServingPipeline(store, scoring="sharded", ann_index="exact",
                                  top_k=10)
        exact = ServingPipeline(EmbeddingStore(queries[:50], services[:400]),
                                scoring="inner_product", top_k=10)
        for query_id in range(10):
            assert sharded.rank(query_id, 10) == exact.rank(query_id, 10)

    def test_pipeline_sharded_rebuilds_on_refresh(self, clustered):
        queries, services = clustered
        store = EmbeddingStore(queries[:50], services[:400])
        pipeline = ServingPipeline(store, scoring="sharded", ann_index="exact",
                                   top_k=5)
        before = pipeline.rank(1, 5)
        rng = np.random.default_rng(0)
        store.refresh(rng.normal(size=queries[:50].shape),
                      rng.normal(size=services[:400].shape))
        after = pipeline.rank(1, 5)
        expected = ServingPipeline(store, scoring="inner_product", top_k=5).rank(1, 5)
        assert after == expected
        assert before != after  # embeddings changed, ranking followed

    def test_sharded_retriever_candidate_restriction(self, clustered):
        queries, services = clustered
        store = EmbeddingStore(queries[:50], services[:400])
        retriever = ShardedRetriever(store, num_shards=4, index="exact")
        ids, scores = retriever.retrieve(0, 5, candidate_ids=[3, 9, 27])
        assert set(ids) <= {3, 9, 27}
        assert list(scores) == sorted(scores, reverse=True)
        empty_ids, empty_scores = retriever.retrieve(0, 5, candidate_ids=[])
        assert empty_ids.size == 0 and empty_scores.size == 0
        with pytest.raises(ValueError):
            retriever.retrieve(0, 0)

    def test_deploy_gateway_num_shards_routes_to_sharded(self, tiny_scenario):
        from repro.models.baselines.lightgcn import LightGCN

        model = LightGCN(tiny_scenario.graph, embedding_dim=8, seed=0)
        sharded = deploy_gateway(model, index="exact", num_shards=4,
                                 workers="serial", cache_capacity=0)
        assert isinstance(sharded, ShardedGateway)
        single = deploy_gateway(model, index="exact", cache_capacity=0)
        assert not isinstance(single, ShardedGateway)
        assert sharded.rank(0, 5) == single.rank(0, 5)
        version = sharded.hot_swap_from_model(model)
        assert version == 1
        sharded.close()
