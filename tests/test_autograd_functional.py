"""Unit tests for functional ops: softmax, normalisation, similarity and losses."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, gradient_check


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(4, 7)) * 10)
        probs = F.softmax(x, axis=1).data
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_softmax_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        a = F.softmax(Tensor(x), axis=1).data
        b = F.softmax(Tensor(x + 100.0), axis=1).data
        assert np.allclose(a, b)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        assert np.allclose(F.log_softmax(x, axis=1).data, np.log(F.softmax(x, axis=1).data))

    def test_softmax_gradient(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gradient_check(lambda inp: (F.softmax(inp[0], axis=1) ** 2).sum(), [x])

    def test_log_softmax_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        gradient_check(lambda inp: F.log_softmax(inp[0], axis=1).mean(), [x])

    def test_softmax_handles_extreme_values(self):
        x = Tensor(np.array([[1000.0, -1000.0]]))
        probs = F.softmax(x, axis=1).data
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)


class TestNormalisationAndSimilarity:
    def test_l2_normalize_unit_norm(self, rng):
        x = Tensor(rng.normal(size=(5, 8)))
        norms = np.linalg.norm(F.l2_normalize(x).data, axis=1)
        assert np.allclose(norms, 1.0)

    def test_l2_normalize_zero_vector_safe(self):
        x = Tensor(np.zeros((1, 4)))
        assert np.isfinite(F.l2_normalize(x).data).all()

    def test_cosine_similarity_of_identical_rows_is_one(self, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        assert np.allclose(F.cosine_similarity(x, x).data, 1.0)

    def test_cosine_similarity_of_opposite_rows_is_minus_one(self, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        y = Tensor(-x.data)
        assert np.allclose(F.cosine_similarity(x, y).data, -1.0)

    def test_cosine_similarity_matrix_shape_and_range(self, rng):
        a = Tensor(rng.normal(size=(3, 5)))
        b = Tensor(rng.normal(size=(7, 5)))
        matrix = F.cosine_similarity_matrix(a, b).data
        assert matrix.shape == (3, 7)
        assert np.all(matrix <= 1.0 + 1e-9) and np.all(matrix >= -1.0 - 1e-9)

    def test_cosine_similarity_gradient(self, rng):
        a = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        gradient_check(lambda inp: F.cosine_similarity(inp[0], inp[1]).sum(), [a, b])


class TestBinaryCrossEntropy:
    def test_bce_perfect_prediction_is_near_zero(self):
        predictions = Tensor(np.array([1.0 - 1e-9, 1e-9]))
        loss = F.binary_cross_entropy(predictions, np.array([1.0, 0.0]))
        assert loss.item() < 1e-6

    def test_bce_chance_prediction_is_log_two(self):
        predictions = Tensor(np.full(10, 0.5))
        labels = np.array([1.0, 0.0] * 5)
        assert F.binary_cross_entropy(predictions, labels).item() == pytest.approx(np.log(2.0))

    def test_bce_gradient(self, rng):
        probabilities = Tensor(rng.uniform(0.05, 0.95, size=12), requires_grad=True)
        labels = (rng.random(12) > 0.5).astype(float)
        gradient_check(lambda inp: F.binary_cross_entropy(inp[0], labels), [probabilities])

    def test_bce_with_logits_matches_naive_formula(self, rng):
        logits = rng.normal(size=20)
        labels = (rng.random(20) > 0.5).astype(float)
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        naive = -(labels * np.log(probabilities) + (1 - labels) * np.log(1 - probabilities)).mean()
        stable = F.binary_cross_entropy_with_logits(Tensor(logits), labels).item()
        assert stable == pytest.approx(naive, rel=1e-9)

    def test_bce_with_logits_extreme_logits_finite(self):
        logits = Tensor(np.array([500.0, -500.0]))
        loss = F.binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())

    def test_bce_with_logits_gradient(self, rng):
        logits = Tensor(rng.normal(size=8), requires_grad=True)
        labels = (rng.random(8) > 0.5).astype(float)
        gradient_check(lambda inp: F.binary_cross_entropy_with_logits(inp[0], labels), [logits])


class TestInfoNCE:
    def test_identical_pairs_give_low_loss(self, rng):
        x = rng.normal(size=(8, 16))
        loss_aligned = F.info_nce(Tensor(x), Tensor(x), temperature=0.1).item()
        loss_random = F.info_nce(Tensor(x), Tensor(rng.normal(size=(8, 16))), temperature=0.1).item()
        assert loss_aligned < loss_random

    def test_in_batch_loss_is_positive(self, rng):
        loss = F.info_nce(Tensor(rng.normal(size=(6, 4))), Tensor(rng.normal(size=(6, 4))))
        assert loss.item() > 0

    def test_explicit_negatives_mode(self, rng):
        anchors = Tensor(rng.normal(size=(5, 8)))
        positives = Tensor(anchors.data + 0.01 * rng.normal(size=(5, 8)))
        negatives = Tensor(rng.normal(size=(20, 8)))
        loss = F.info_nce(anchors, positives, negatives=negatives, temperature=0.1)
        assert loss.item() < 0.5  # positives nearly identical → easy task

    def test_higher_temperature_flattens_loss(self, rng):
        anchors = Tensor(rng.normal(size=(10, 8)))
        positives = Tensor(anchors.data + 0.05 * rng.normal(size=(10, 8)))
        sharp = F.info_nce(anchors, positives, temperature=0.05).item()
        flat = F.info_nce(anchors, positives, temperature=5.0).item()
        assert sharp < flat

    def test_in_batch_gradient(self, rng):
        a = Tensor(rng.normal(size=(5, 6)), requires_grad=True)
        b = Tensor(rng.normal(size=(5, 6)), requires_grad=True)
        gradient_check(lambda inp: F.info_nce(inp[0], inp[1], temperature=0.4), [a, b])

    def test_explicit_negatives_gradient(self, rng):
        a = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        n = Tensor(rng.normal(size=(7, 6)), requires_grad=True)
        gradient_check(lambda inp: F.info_nce(inp[0], inp[1], negatives=inp[2], temperature=0.3), [a, b, n])


class TestDropoutAndMSE:
    def test_dropout_identity_when_not_training(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        assert np.allclose(F.dropout(x, 0.5, rng=rng, training=False).data, x.data)

    def test_dropout_zero_rate_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        assert np.allclose(F.dropout(x, 0.0, rng=rng).data, x.data)

    def test_dropout_scales_surviving_entries(self, rng):
        x = Tensor(np.ones((2000,)))
        dropped = F.dropout(x, 0.5, rng=rng).data
        surviving = dropped[dropped > 0]
        assert np.allclose(surviving, 2.0)
        assert abs(dropped.mean() - 1.0) < 0.1

    def test_dropout_invalid_rate_raises(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, rng=rng)

    def test_mse_value_and_gradient(self, rng):
        a = Tensor(rng.normal(size=(6,)), requires_grad=True)
        target = rng.normal(size=(6,))
        assert F.mse(a, target).item() == pytest.approx(((a.data - target) ** 2).mean())
        gradient_check(lambda inp: F.mse(inp[0], target), [a])
