"""Tests for the service-search graph and its builder."""

import numpy as np
import pytest

from repro.data.schema import CORRELATION_ATTRIBUTES
from repro.graph.builder import GraphBuildConfig, GraphBuilder
from repro.graph.search_graph import ServiceSearchGraph


class TestGraphBuilder:
    def test_interaction_edges_require_clicks(self, tiny_scenario):
        graph = tiny_scenario.graph
        dataset = tiny_scenario.dataset
        clicked_pairs = {
            (i.query_id, i.service_id)
            for i in tiny_scenario.splits.train
            if i.clicked
        }
        # Every CTR-carrying edge corresponds to a clicked train pair.
        query_nodes, service_nodes = np.nonzero(np.triu(graph.ctr > 0))
        for query_node, service_node in zip(query_nodes, service_nodes):
            assert (int(query_node), int(service_node - graph.num_queries)) in clicked_pairs

    def test_ctr_values_in_unit_interval(self, tiny_graph):
        assert np.all(tiny_graph.ctr >= 0.0)
        assert np.all(tiny_graph.ctr <= 1.0)

    def test_correlation_edges_share_attributes(self, tiny_scenario):
        graph = tiny_scenario.graph
        dataset = tiny_scenario.dataset
        config = GraphBuildConfig()
        rows, cols = np.nonzero(np.triu(graph.correlation > 0))
        assert len(rows) > 0
        for query_node, service_node in zip(rows[:50], cols[:50]):
            query = dataset.query_by_id(int(query_node))
            service = dataset.service_by_id(int(service_node - graph.num_queries))
            shared = sum(
                1 for key in CORRELATION_ATTRIBUTES
                if query.attributes.get(key) == service.attributes.get(key)
            )
            assert shared >= config.min_shared_attributes

    def test_graph_is_bipartite(self, tiny_graph):
        num_queries = tiny_graph.num_queries
        # No query-query or service-service edges.
        assert np.all(tiny_graph.adjacency[:num_queries, :num_queries] == 0)
        assert np.all(tiny_graph.adjacency[num_queries:, num_queries:] == 0)

    def test_adjacency_is_symmetric(self, tiny_graph):
        assert np.allclose(tiny_graph.adjacency, tiny_graph.adjacency.T)
        assert np.allclose(tiny_graph.ctr, tiny_graph.ctr.T)
        assert np.allclose(tiny_graph.correlation, tiny_graph.correlation.T)

    def test_no_test_label_leakage(self, tiny_scenario):
        """Edges are built from train interactions only: a pair clicked only
        in the test window must not carry an interaction (CTR) edge."""
        graph = tiny_scenario.graph
        train_pairs = {(i.query_id, i.service_id) for i in tiny_scenario.splits.train}
        test_only_clicks = [
            i for i in tiny_scenario.splits.test
            if i.clicked and (i.query_id, i.service_id) not in train_pairs
        ]
        for interaction in test_only_clicks:
            query_node = interaction.query_id
            service_node = graph.num_queries + interaction.service_id
            assert graph.ctr[query_node, service_node] == 0.0

    def test_max_correlation_edges_cap(self, tiny_dataset, tiny_scenario):
        config = GraphBuildConfig(max_correlation_edges_per_query=2)
        builder = GraphBuilder(config)
        graph = builder.build(tiny_dataset, tiny_scenario.splits.train, tiny_scenario.head_tail)
        correlation_degree = (graph.correlation[: graph.num_queries] > 0).sum(axis=1)
        assert correlation_degree.max() <= 2

    def test_min_clicks_threshold(self, tiny_dataset, tiny_scenario):
        strict = GraphBuilder(GraphBuildConfig(min_clicks=1000))
        graph = strict.build(tiny_dataset, tiny_scenario.splits.train, tiny_scenario.head_tail)
        assert np.all(graph.ctr == 0.0)


class TestServiceSearchGraph:
    def test_node_index_mapping(self, tiny_graph):
        assert np.array_equal(tiny_graph.query_node([0, 5]), [0, 5])
        assert np.array_equal(
            tiny_graph.service_node([0, 2]), [tiny_graph.num_queries, tiny_graph.num_queries + 2]
        )
        assert tiny_graph.is_query_node([0, tiny_graph.num_queries]).tolist() == [True, False]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ServiceSearchGraph(
                num_queries=2, num_services=2,
                adjacency=np.zeros((3, 3)), ctr=np.zeros((4, 4)), correlation=np.zeros((4, 4)),
                query_attributes={}, service_attributes={}, head_query_ids=[0],
            )

    def test_head_tail_adjacency_partition_edges(self, tiny_graph):
        head_edges = int(tiny_graph.head_adjacency.sum()) // 2
        tail_edges = int(tiny_graph.tail_adjacency.sum()) // 2
        assert head_edges + tail_edges == tiny_graph.num_edges

    def test_head_adjacency_only_touches_head_queries(self, tiny_graph):
        head_set = set(tiny_graph.head_query_ids.tolist())
        rows = np.nonzero(tiny_graph.head_adjacency[: tiny_graph.num_queries].sum(axis=1) > 0)[0]
        assert set(rows.tolist()) <= head_set

    def test_tail_adjacency_excludes_head_queries(self, tiny_graph):
        head_set = set(tiny_graph.head_query_ids.tolist())
        rows = np.nonzero(tiny_graph.tail_adjacency[: tiny_graph.num_queries].sum(axis=1) > 0)[0]
        assert head_set.isdisjoint(rows.tolist())

    def test_node_id_views_include_all_services(self, tiny_graph):
        assert len(tiny_graph.head_node_ids()) == len(tiny_graph.head_query_ids) + tiny_graph.num_services
        assert len(tiny_graph.tail_node_ids()) == len(tiny_graph.tail_query_ids) + tiny_graph.num_services

    def test_degree_and_neighbor_lists_consistent(self, tiny_graph):
        degrees = tiny_graph.degree()
        neighbors = tiny_graph.neighbor_lists()
        assert len(neighbors) == tiny_graph.num_nodes
        assert all(len(n) == d for n, d in zip(neighbors, degrees))

    def test_edge_feature_stack_shape(self, tiny_graph):
        stack = tiny_graph.edge_feature_stack()
        assert stack.shape == (tiny_graph.num_nodes, tiny_graph.num_nodes, 2)

    def test_statistics_counts(self, tiny_scenario):
        stats = tiny_scenario.graph.statistics(
            intention_nodes=tiny_scenario.forest.num_intentions,
            intention_edges=tiny_scenario.forest.num_edges,
        )
        assert stats.head_edges + stats.tail_edges == tiny_scenario.graph.num_edges
        assert stats.intention_nodes == tiny_scenario.forest.num_intentions
        row = stats.as_row()
        assert "head_nodes" in row and "tail_edges" in row
