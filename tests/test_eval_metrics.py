"""Tests for ranking metrics: AUC, GAUC, NDCG@K, CTR and hit rate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.eval.metrics import auc, ctr, dcg_at_k, gauc, hit_rate_at_k, ndcg_at_k


class TestAUC:
    def test_perfect_ranking(self):
        assert auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == pytest.approx(1.0)

    def test_inverted_ranking(self):
        assert auc([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9]) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=5000)
        scores = rng.random(5000)
        assert abs(auc(labels, scores) - 0.5) < 0.03

    def test_ties_get_half_credit(self):
        assert auc([0, 1], [0.5, 0.5]) == pytest.approx(0.5)

    def test_single_class_is_nan(self):
        assert np.isnan(auc([1, 1, 1], [0.1, 0.5, 0.9]))
        assert np.isnan(auc([0, 0], [0.1, 0.9]))

    def test_invalid_labels_rejected(self):
        with pytest.raises(ValueError):
            auc([0, 2], [0.1, 0.2])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            auc([0, 1, 1], [0.5, 0.5])

    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(5)
        labels = rng.integers(0, 2, size=60)
        if labels.sum() in (0, 60):
            labels[0] = 1 - labels[0]
        scores = rng.random(60)
        positives = scores[labels == 1]
        negatives = scores[labels == 0]
        wins = sum((p > n) + 0.5 * (p == n) for p in positives for n in negatives)
        expected = wins / (len(positives) * len(negatives))
        assert auc(labels, scores) == pytest.approx(expected)


class TestGAUC:
    def test_weighted_average_of_group_aucs(self):
        labels = [1, 0, 1, 0, 0, 1]
        scores = [0.9, 0.1, 0.2, 0.8, 0.4, 0.6]
        groups = [0, 0, 1, 1, 2, 2]
        per_group = [auc(labels[:2], scores[:2]), auc(labels[2:4], scores[2:4]), auc(labels[4:], scores[4:])]
        expected = np.average(per_group, weights=[2, 2, 2])
        assert gauc(labels, scores, groups) == pytest.approx(expected)

    def test_single_class_groups_are_skipped(self):
        labels = [1, 1, 0, 1]
        scores = [0.3, 0.6, 0.1, 0.9]
        groups = [0, 0, 1, 1]
        assert gauc(labels, scores, groups) == pytest.approx(auc(labels[2:], scores[2:]))

    def test_all_degenerate_groups_give_nan(self):
        assert np.isnan(gauc([1, 1], [0.2, 0.3], [0, 1]))

    def test_custom_weights(self):
        labels = [1, 0, 0, 1]
        scores = [0.9, 0.1, 0.9, 0.1]
        groups = [0, 0, 1, 1]
        weighted = gauc(labels, scores, groups, weights=[10, 10, 1, 1])
        assert weighted > 0.5  # the good group dominates

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            gauc([1, 0], [0.5], [0, 0])


class TestNDCG:
    def test_perfect_ranking_is_one(self):
        labels = [1, 0, 0, 1, 0]
        scores = [0.9, 0.1, 0.2, 0.8, 0.3]
        assert ndcg_at_k(labels, scores, [0] * 5, k=5) == pytest.approx(1.0)

    def test_worst_ranking_below_one(self):
        labels = [1, 0, 0, 0]
        scores = [0.1, 0.9, 0.8, 0.7]
        value = ndcg_at_k(labels, scores, [0] * 4, k=4)
        assert value == pytest.approx(1.0 / np.log2(5))

    def test_truncation_at_k(self):
        labels = [0, 0, 0, 1]
        scores = [0.9, 0.8, 0.7, 0.1]
        assert ndcg_at_k(labels, scores, [0] * 4, k=2) == pytest.approx(0.0)

    def test_groups_without_positives_are_skipped(self):
        labels = [0, 0, 1, 0]
        scores = [0.5, 0.6, 0.9, 0.2]
        groups = [0, 0, 1, 1]
        assert ndcg_at_k(labels, scores, groups, k=2) == pytest.approx(1.0)

    def test_all_negative_returns_nan(self):
        assert np.isnan(ndcg_at_k([0, 0], [0.2, 0.4], [0, 0], k=2))

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            ndcg_at_k([1], [0.5], [0], k=0)

    def test_dcg_helper(self):
        assert dcg_at_k([1, 1, 0], k=2) == pytest.approx(1.0 + 1.0 / np.log2(3))
        assert dcg_at_k([], k=3) == 0.0


class TestCTRAndHitRate:
    def test_ctr_simple_ratio(self):
        assert ctr([1, 0, 1, 0]) == pytest.approx(0.5)
        assert ctr([1, 1], impressions=10) == pytest.approx(0.2)
        assert np.isnan(ctr([]))

    def test_hit_rate_counts_groups_with_top_k_hits(self):
        labels = [1, 0, 0, 0, 0, 1]
        scores = [0.9, 0.5, 0.4, 0.9, 0.8, 0.1]
        groups = [0, 0, 0, 1, 1, 1]
        assert hit_rate_at_k(labels, scores, groups, k=1) == pytest.approx(0.5)
        assert hit_rate_at_k(labels, scores, groups, k=3) == pytest.approx(1.0)

    def test_hit_rate_invalid_k(self):
        with pytest.raises(ValueError):
            hit_rate_at_k([1], [0.1], [0], k=0)


@settings(max_examples=30, deadline=None)
@given(st.integers(5, 60), st.integers(0, 500))
def test_auc_invariant_to_monotonic_transform(size, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=size)
    if labels.sum() in (0, size):
        labels[0] = 1 - labels[0]
    scores = rng.normal(size=size)
    original = auc(labels, scores)
    transformed = auc(labels, 1.0 / (1.0 + np.exp(-3.0 * scores)))
    assert original == pytest.approx(transformed)


@settings(max_examples=30, deadline=None)
@given(st.integers(5, 40), st.integers(0, 500))
def test_auc_complement_symmetry(size, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=size)
    if labels.sum() in (0, size):
        labels[0] = 1 - labels[0]
    scores = rng.random(size)
    assert auc(labels, scores) == pytest.approx(1.0 - auc(labels, -scores))
