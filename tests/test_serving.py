"""Tests for the serving substrate: store, retrieval, ranking, pipeline, extractors."""

import numpy as np
import pytest

from repro.graph.builder import GraphBuildConfig
from repro.serving import (
    EmbeddingStore,
    InnerProductRetriever,
    ModelScoringRetriever,
    NodeFeatureExtractor,
    RankingModule,
    RelationExtractor,
    ServingPipeline,
    deploy_model,
)


@pytest.fixture()
def store(rng):
    return EmbeddingStore(rng.normal(size=(20, 8)), rng.normal(size=(15, 8)))


class TestEmbeddingStore:
    def test_lookup_shapes(self, store):
        assert store.query([0, 3]).shape == (2, 8)
        assert store.service([1]).shape == (1, 8)
        assert store.num_queries == 20 and store.num_services == 15
        assert store.embedding_dim == 8

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            EmbeddingStore(rng.normal(size=(5, 8)), rng.normal(size=(5, 4)))
        with pytest.raises(ValueError):
            EmbeddingStore(rng.normal(size=(5,)), rng.normal(size=(5, 4)))

    def test_refresh_bumps_version(self, store, rng):
        version = store.refresh(rng.normal(size=(20, 8)), rng.normal(size=(15, 8)))
        assert version == 1 and store.version == 1

    def test_refresh_must_keep_dimension(self, store, rng):
        with pytest.raises(ValueError):
            store.refresh(rng.normal(size=(20, 16)), rng.normal(size=(15, 16)))


class TestRetriever:
    def test_matches_brute_force_inner_product(self, store):
        retriever = InnerProductRetriever(store)
        query_embedding = store.query([2])[0]
        expected = np.argsort(-(store.all_services() @ query_embedding))[:5]
        ids, scores = retriever.retrieve(2, 5)
        assert list(ids) == list(expected)
        assert np.all(np.diff(scores) <= 1e-12)

    def test_candidate_restriction(self, store):
        retriever = InnerProductRetriever(store)
        ids, _ = retriever.retrieve(0, 3, candidate_ids=[1, 4, 7])
        assert set(ids.tolist()) <= {1, 4, 7}

    def test_k_larger_than_catalogue(self, store):
        ids, _ = InnerProductRetriever(store).retrieve(0, 100)
        assert len(ids) == store.num_services

    def test_normalized_mode_equals_cosine_ranking(self, store):
        retriever = InnerProductRetriever(store, normalize=True)
        query_embedding = store.query([1])[0]
        services = store.all_services()
        cosine = services @ query_embedding / (
            np.linalg.norm(services, axis=1) * np.linalg.norm(query_embedding)
        )
        ids, _ = retriever.retrieve(1, 4)
        assert list(ids) == list(np.argsort(-cosine)[:4])

    def test_invalid_k_and_empty_candidates(self, store):
        retriever = InnerProductRetriever(store)
        with pytest.raises(ValueError):
            retriever.retrieve(0, 0)
        ids, scores = retriever.retrieve(0, 3, candidate_ids=[])
        assert len(ids) == 0 and len(scores) == 0


class TestRankingModule:
    def test_rank_and_metadata(self, tiny_scenario, rng):
        store = EmbeddingStore(
            rng.normal(size=(tiny_scenario.dataset.num_queries, 8)),
            rng.normal(size=(tiny_scenario.dataset.num_services, 8)),
        )
        module = RankingModule(InnerProductRetriever(store), dataset=tiny_scenario.dataset, top_k=5)
        ranked_ids = module.rank(0)
        detailed = module.rank_with_metadata(0)
        assert len(ranked_ids) == 5
        assert [entry.service_id for entry in detailed] == ranked_ids
        assert all(entry.rank == position + 1 for position, entry in enumerate(detailed))
        assert all(entry.mau >= 0 and 1 <= entry.rating <= 5 for entry in detailed)

    def test_average_quality_requires_dataset(self, store):
        module = RankingModule(InnerProductRetriever(store), dataset=None)
        with pytest.raises(ValueError):
            module.average_quality(0)

    def test_invalid_top_k(self, store):
        with pytest.raises(ValueError):
            RankingModule(InnerProductRetriever(store), top_k=0)


class TestModelScoringRetriever:
    def test_matches_model_predictions(self, tiny_scenario):
        from repro.models import LightGCN

        model = LightGCN(tiny_scenario.graph, embedding_dim=8, seed=0)
        retriever = ModelScoringRetriever(model, tiny_scenario.dataset.num_services)
        ids, scores = retriever.retrieve(3, 5)
        all_scores = model.predict(
            np.full(tiny_scenario.dataset.num_services, 3),
            np.arange(tiny_scenario.dataset.num_services),
        )
        expected = np.argsort(-all_scores)[:5]
        assert list(ids) == list(expected)
        assert np.allclose(scores, all_scores[expected])

    def test_candidate_restriction_and_validation(self, tiny_scenario):
        from repro.models import LightGCN

        model = LightGCN(tiny_scenario.graph, embedding_dim=8, seed=0)
        retriever = ModelScoringRetriever(model, tiny_scenario.dataset.num_services)
        ids, _ = retriever.retrieve(0, 2, candidate_ids=[1, 3, 5])
        assert set(ids.tolist()) <= {1, 3, 5}
        with pytest.raises(ValueError):
            retriever.retrieve(0, 0)
        with pytest.raises(ValueError):
            ModelScoringRetriever(model, 0)


class TestPipelineScoringModes:
    def test_deploy_model_defaults_to_model_scoring(self, tiny_scenario):
        from repro.models import LightGCN

        model = LightGCN(tiny_scenario.graph, embedding_dim=8, seed=0)
        pipeline = deploy_model(model, tiny_scenario.dataset, top_k=3)
        assert isinstance(pipeline.retriever, ModelScoringRetriever)
        inner = deploy_model(model, tiny_scenario.dataset, top_k=3, scoring="inner_product")
        assert isinstance(inner.retriever, InnerProductRetriever)

    def test_invalid_scoring_mode_rejected(self, store):
        with pytest.raises(ValueError):
            ServingPipeline(store, scoring="bm25")
        with pytest.raises(ValueError):
            ServingPipeline(store, scoring="model")  # model object missing


class TestPipelineAndExtractors:
    def test_deploy_model_round_trip(self, tiny_scenario):
        from repro.models import LightGCN

        model = LightGCN(tiny_scenario.graph, embedding_dim=8, seed=0)
        pipeline = deploy_model(model, tiny_scenario.dataset, top_k=4)
        ranked = pipeline.rank(0)
        assert len(ranked) == 4
        assert all(0 <= service_id < tiny_scenario.dataset.num_services for service_id in ranked)
        detailed = pipeline.rank_with_metadata(0, 2)
        assert len(detailed) == 2

    def test_pipeline_refresh_from_model(self, tiny_scenario):
        from repro.models import LightGCN

        model = LightGCN(tiny_scenario.graph, embedding_dim=8, seed=0)
        pipeline = deploy_model(model, tiny_scenario.dataset)
        assert pipeline.refresh_from_model(model) == 1

    def test_node_feature_extractor(self, tiny_scenario):
        extractor = NodeFeatureExtractor(tiny_scenario.dataset)
        query_features = extractor.query_features()
        service_features = extractor.service_features()
        assert query_features["city"].shape == (tiny_scenario.dataset.num_queries,)
        assert service_features["mau"].shape == (tiny_scenario.dataset.num_services,)
        assert np.all(service_features["rating"] >= 1)

    def test_relation_extractor_builds_equivalent_graph(self, tiny_scenario):
        extractor = RelationExtractor(tiny_scenario.dataset, GraphBuildConfig())
        graph = extractor.build_graph(tiny_scenario.splits.train, tiny_scenario.head_tail)
        assert graph.num_edges == tiny_scenario.graph.num_edges
        summary = extractor.relation_summary(graph)
        assert summary.num_interaction_pairs > 0
        assert summary.num_correlation_pairs > 0

    def test_pipeline_is_a_valid_ab_ranker(self, tiny_scenario, rng):
        from repro.eval.ab_test import ABTestConfig, OnlineABTest

        store = EmbeddingStore(
            rng.normal(size=(tiny_scenario.dataset.num_queries, 8)),
            rng.normal(size=(tiny_scenario.dataset.num_services, 8)),
        )
        pipeline = ServingPipeline(store, tiny_scenario.dataset, top_k=3)
        test = OnlineABTest(
            tiny_scenario.dataset, tiny_scenario.oracle,
            config=ABTestConfig(num_days=1, sessions_per_day=50, top_k=3, seed=0),
        )
        outcome = test.run(pipeline, pipeline)
        assert outcome.baseline[0].impressions > 0
