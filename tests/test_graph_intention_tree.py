"""Tests for the intention forest structure and IGCL negative sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.schema import Intention
from repro.data.synthetic import SyntheticConfig, generate_dataset
from repro.graph.intention_tree import IntentionForest


def _manual_forest() -> IntentionForest:
    """Two small trees:

    tree 0: 0 -> (1, 2), 1 -> (3,)           (levels 1, 2, 2, 3)
    tree 1: 4 -> (5,)                         (levels 1, 2)
    """
    intentions = [
        Intention(0, level=1, parent_id=None, children=[1, 2], tree_id=0),
        Intention(1, level=2, parent_id=0, children=[3], tree_id=0),
        Intention(2, level=2, parent_id=0, children=[], tree_id=0),
        Intention(3, level=3, parent_id=1, children=[], tree_id=0),
        Intention(4, level=1, parent_id=None, children=[5], tree_id=1),
        Intention(5, level=2, parent_id=4, children=[], tree_id=1),
    ]
    return IntentionForest(intentions)


class TestForestStructure:
    def test_counts(self):
        forest = _manual_forest()
        assert forest.num_intentions == 6
        assert forest.num_edges == 4
        assert forest.max_level == 3

    def test_parent_child_level_accessors(self):
        forest = _manual_forest()
        assert forest.parent(3) == 1
        assert forest.parent(0) is None
        assert forest.children(0) == [1, 2]
        assert forest.level(3) == 3
        assert forest.tree(5) == 1

    def test_ancestors_chain(self):
        forest = _manual_forest()
        assert forest.ancestors(3) == (1, 0)
        assert forest.ancestors(0) == ()

    def test_parent_chain_includes_self(self):
        forest = _manual_forest()
        assert forest.parent_chain(3) == (3, 1, 0)

    def test_parent_chain_truncated_by_max_level(self):
        forest = _manual_forest()
        assert forest.parent_chain(3, max_level=1) == (3,)
        assert forest.parent_chain(3, max_level=2) == (3, 1)
        with pytest.raises(ValueError):
            forest.parent_chain(3, max_level=0)

    def test_nodes_at_level(self):
        forest = _manual_forest()
        assert set(forest.nodes_at_level(1).tolist()) == {0, 4}
        assert set(forest.nodes_at_level(2).tolist()) == {1, 2, 5}
        assert forest.nodes_at_level(9).size == 0

    def test_bottom_up_levels_order(self):
        forest = _manual_forest()
        levels = forest.bottom_up_levels()
        assert [set(level.tolist()) for level in levels] == [{3}, {1, 2, 5}, {0, 4}]

    def test_empty_forest_rejected(self):
        with pytest.raises(ValueError):
            IntentionForest([])


class TestNegativeSampling:
    def test_hard_negatives_same_tree_same_level(self):
        forest = _manual_forest()
        hard = forest.hard_negatives(1)
        assert set(hard.tolist()) == {2}

    def test_easy_negatives_other_tree_same_level(self):
        forest = _manual_forest()
        easy = forest.easy_negatives(1)
        assert set(easy.tolist()) == {5}

    def test_negatives_exclude_requested_ids(self):
        forest = _manual_forest()
        assert forest.hard_negatives(1, exclude=[2]).size == 0
        assert forest.easy_negatives(1, exclude=[5]).size == 0

    def test_sample_negatives_levels_match(self, rng):
        forest = _manual_forest()
        sampled = forest.sample_negatives(1, num_negatives=4, rng=rng)
        assert sampled.size > 0
        assert all(forest.level(int(n)) == forest.level(1) for n in sampled)
        assert 1 not in sampled.tolist()

    def test_sample_negatives_zero_request(self, rng):
        forest = _manual_forest()
        assert forest.sample_negatives(1, 0, rng=rng).size == 0

    def test_degenerate_forest_falls_back_to_any_other_node(self, rng):
        intentions = [
            Intention(0, level=1, parent_id=None, children=[1], tree_id=0),
            Intention(1, level=2, parent_id=0, children=[], tree_id=0),
        ]
        forest = IntentionForest(intentions)
        # Level-2 has a single node: no level-matched negatives exist at all,
        # so the sampler falls back to any other intention.
        sampled = forest.sample_negatives(1, 3, rng=rng)
        assert sampled.size > 0
        assert 1 not in sampled.tolist()

    def test_from_dataset_consistency(self, tiny_dataset, tiny_forest):
        assert tiny_forest.num_intentions == tiny_dataset.num_intentions
        # Every query's intention chain terminates at a root.
        for query in tiny_dataset.queries[:20]:
            chain = tiny_forest.parent_chain(query.intention_id)
            assert tiny_forest.level(chain[-1]) == 1


@settings(max_examples=8, deadline=None)
@given(depth=st.integers(2, 5), trees=st.integers(1, 4), seed=st.integers(0, 100))
def test_forest_invariants_on_generated_data(depth, trees, seed):
    config = SyntheticConfig(
        num_queries=40, num_services=15, num_interactions=500, total_page_views=2_000,
        intention_depth=depth, num_intention_trees=trees, seed=seed,
    )
    dataset = generate_dataset(config)
    forest = IntentionForest.from_dataset(dataset)
    # Levels increase by exactly one from parent to child.
    for intention in dataset.intentions:
        if intention.parent_id is not None:
            assert forest.level(intention.intention_id) == forest.level(intention.parent_id) + 1
    # Parent chains are strictly decreasing in level and stay inside one tree.
    rng = np.random.default_rng(seed)
    for intention_id in rng.choice(forest.num_intentions, size=min(10, forest.num_intentions), replace=False):
        chain = forest.parent_chain(int(intention_id))
        levels = [forest.level(node) for node in chain]
        assert levels == sorted(levels, reverse=True)
        assert len({forest.tree(node) for node in chain}) == 1
