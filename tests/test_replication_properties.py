"""Randomized properties of wire snapshot replication.

Two invariants hold for *any* publish history, not just the curated cases
in the fault-matrix tier, so they are checked here over randomized publish
sequences:

* **delta economics** — the set of chunk ids a fetch moves over the wire
  is exactly the set difference between the peer's live content ids and
  what the local chunk store already holds (content addressing makes the
  transfer plan a set subtraction, never a heuristic);
* **resume economics** — across any sequence of mid-fetch kills and
  resumes, no chunk that landed durably ever crosses the wire twice
  (counted by a server-side transport wrapper, the honest tally).
"""

import numpy as np
import pytest

from repro.serving.gateway.store import VersionedEmbeddingStore
from repro.serving.snapshot import SnapshotFetcher, SnapshotServer, load_manifest
from repro.serving.snapshot.manifest import (
    MANIFEST_DIR,
    _referenced_chunks,
    read_pointer,
)

DIM = 8


class KilledFetch(RuntimeError):
    pass


def make_store(root, rng, num_services):
    queries = rng.standard_normal((12, DIM)).astype(np.float32)
    services = rng.standard_normal((num_services, DIM)).astype(np.float32)
    return VersionedEmbeddingStore(
        queries, services, num_shards=2, quantization=("int8",),
        durable_dir=str(root), durable_rows_per_chunk=16,
    )


def random_publish(store, rng):
    """Perturb a random slice of the service table and publish it."""
    snapshot = store.snapshot()
    queries = np.asarray(snapshot.queries).copy()
    services = np.asarray(snapshot.services).copy()
    rows = rng.integers(0, services.shape[0], size=rng.integers(1, 24))
    services[rows] += rng.standard_normal((rows.size, DIM)).astype(np.float32)
    store.publish(queries, services)


def live_content_ids(root):
    """Chunk ids the live manifest (and its index sidecars) reference."""
    rel = read_pointer(root)
    manifest = load_manifest(root, rel)
    ids = set(_referenced_chunks(manifest))
    version = int(manifest["version"])
    for path in (root / MANIFEST_DIR).glob(f"v{version}-index-*.json"):
        ids |= _referenced_chunks(load_manifest(root, f"{MANIFEST_DIR}/{path.name}"))
    return ids


def local_chunk_ids(root):
    return {path.stem for path in root.glob("chunks/*.chunk")}


def counting_filter(counts):
    def chunk_filter(chunk_id, raw):
        counts[chunk_id] = counts.get(chunk_id, 0) + 1
        return raw

    return chunk_filter


@pytest.mark.parametrize("seed", range(4))
def test_fetched_set_is_exactly_the_content_id_difference(tmp_path, seed):
    rng = np.random.default_rng(100 + seed)
    src = tmp_path / "src"
    src.mkdir()
    dst = tmp_path / "dst"
    dst.mkdir()
    store = make_store(src, rng, num_services=int(rng.integers(48, 96)))
    for _ in range(int(rng.integers(0, 3))):
        random_publish(store, rng)

    counts = {}
    with SnapshotServer(src, chunk_filter=counting_filter(counts)) as server:
        for _round in range(3):
            expected = live_content_ids(src) - local_chunk_ids(dst)
            counts.clear()
            report = SnapshotFetcher(server.address, dst).fetch()
            assert set(counts) == expected, (
                "wire transfer set diverged from the content-id set difference"
            )
            assert report.chunks_fetched == len(expected)
            assert all(n == 1 for n in counts.values())
            # Mutate the source for the next round's delta.
            for _ in range(int(rng.integers(1, 3))):
                random_publish(store, rng)


@pytest.mark.parametrize("seed", range(4))
def test_resume_never_retransfers_a_landed_chunk(tmp_path, seed):
    rng = np.random.default_rng(200 + seed)
    src = tmp_path / "src"
    src.mkdir()
    dst = tmp_path / "dst"
    dst.mkdir()
    store = make_store(src, rng, num_services=int(rng.integers(64, 128)))
    for _ in range(int(rng.integers(0, 2))):
        random_publish(store, rng)

    counts = {}
    with SnapshotServer(src, chunk_filter=counting_filter(counts)) as server:
        total = len(live_content_ids(src))
        assert total >= 3, "store too small to exercise mid-fetch kills"
        # Kill the fetch at random points until one run survives; every
        # landed chunk must cross the wire exactly once across the whole
        # kill/resume history.
        for _attempt in range(32):
            kill_at = int(rng.integers(1, total))
            state = {"landed": 0}

            def killer(chunk_id, nbytes, state=state, kill_at=kill_at):
                state["landed"] += 1
                if state["landed"] >= kill_at:
                    raise KilledFetch()

            fetcher = SnapshotFetcher(server.address, dst, observer=killer)
            try:
                fetcher.fetch()
                break
            except KilledFetch:
                continue
        else:
            SnapshotFetcher(server.address, dst).fetch()

    assert local_chunk_ids(dst) >= live_content_ids(src)
    assert read_pointer(dst) == read_pointer(src)
    retransferred = {cid: n for cid, n in counts.items() if n > 1}
    assert not retransferred, (
        f"chunks crossed the wire more than once: {retransferred}"
    )
