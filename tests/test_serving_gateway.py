"""Tests for the serving gateway: ANN recall, batching, caching, hot-swap."""

import threading

import numpy as np
import pytest

from repro.eval.serving_metrics import (
    latency_percentiles,
    recall_at_k,
    summarize_gateway,
    summarize_load_test,
)
from repro.serving import ServingPipeline
from repro.serving.embedding_store import EmbeddingStore
from repro.serving.gateway import (
    BatchScheduler,
    ExactIndex,
    IVFIndex,
    LRUTTLCache,
    LSHIndex,
    ServingGateway,
    StaleReadError,
    VersionedEmbeddingStore,
    build_index,
    clustered_embeddings,
    deploy_gateway,
    index_kinds,
    zipf_query_ids,
)


class FakeClock:
    """Manually advanced clock for deadline / TTL / staleness tests."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def clustered():
    """Seeded synthetic store with cluster structure (the ANN-friendly regime)."""
    return clustered_embeddings(400, 3000, 32, num_clusters=12, spread=0.18, seed=3)


@pytest.fixture(scope="module")
def exact_top10(clustered):
    queries, services = clustered
    ids, _ = ExactIndex().build(services).search(queries, 10)
    return ids


# --------------------------------------------------------------------- #
# ANN indexes
# --------------------------------------------------------------------- #
class TestIndexes:
    def test_exact_index_matches_brute_force(self, clustered):
        queries, services = clustered
        index = ExactIndex().build(services)
        ids, scores = index.search(queries[:8], 5)
        expected = np.argsort(-(queries[:8] @ services.T), axis=1)[:, :5]
        assert np.array_equal(ids, expected)
        assert np.all(np.diff(scores, axis=1) <= 1e-12)

    def test_ivf_recall_at_10(self, clustered, exact_top10):
        queries, services = clustered
        index = IVFIndex(seed=0).build(services)
        ids, _ = index.search(queries, 10)
        assert recall_at_k(ids, exact_top10, 10) >= 0.9

    def test_lsh_recall_at_10(self, clustered, exact_top10):
        queries, services = clustered
        index = LSHIndex(num_tables=16, num_bits=8, seed=0).build(services)
        ids, _ = index.search(queries, 10)
        assert recall_at_k(ids, exact_top10, 10) >= 0.9

    def test_ivf_lists_cover_catalogue(self, clustered):
        _, services = clustered
        index = IVFIndex(num_lists=20, seed=0).build(services)
        members = np.concatenate([index.cell_members(c) for c in range(index.num_cells)])
        assert sorted(members.tolist()) == list(range(services.shape[0]))

    def test_search_pads_when_k_exceeds_candidates(self):
        services = np.eye(4)
        index = ExactIndex().build(services)
        ids, scores = index.search(np.ones((1, 4)), 9)
        assert ids.shape == (1, 9)
        assert np.all(ids[0, :4] >= 0) and np.all(ids[0, 4:] == -1)
        assert np.all(np.isneginf(scores[0, 4:]))

    def test_build_index_registry(self, clustered):
        _, services = clustered
        assert index_kinds()[0] == "exact"
        for kind in index_kinds():
            assert build_index(kind, services).num_services == services.shape[0]
        with pytest.raises(ValueError):
            build_index("annoy", services)

    def test_invalid_k_rejected(self, clustered):
        _, services = clustered
        with pytest.raises(ValueError):
            ExactIndex().build(services).search(np.ones((1, 32)), 0)


# --------------------------------------------------------------------- #
# Versioned store
# --------------------------------------------------------------------- #
class TestVersionedStore:
    def test_snapshots_are_immutable(self, rng):
        store = VersionedEmbeddingStore(rng.normal(size=(6, 4)), rng.normal(size=(9, 4)))
        snapshot = store.snapshot()
        with pytest.raises(ValueError):
            snapshot.queries[0, 0] = 1.0
        with pytest.raises(ValueError):
            snapshot.services[0, 0] = 1.0

    def test_publish_bumps_version_and_keeps_old_snapshot_readable(self, rng):
        store = VersionedEmbeddingStore(rng.normal(size=(6, 4)), rng.normal(size=(9, 4)))
        pinned = store.snapshot()
        assert store.publish(rng.normal(size=(6, 4)), rng.normal(size=(9, 4))) == 1
        assert store.version == 1
        assert pinned.version == 0  # pinned readers keep a consistent view
        assert pinned.num_services == 9

    def test_sharding_routes_ids(self, rng):
        store = VersionedEmbeddingStore(rng.normal(size=(4, 4)), rng.normal(size=(10, 4)),
                                        num_shards=3)
        snapshot = store.snapshot()
        assert snapshot.num_shards == 3
        all_ids = np.concatenate(
            [snapshot.shard(index)[0] for index in range(snapshot.num_shards)]
        )
        assert all_ids.tolist() == list(range(10))
        for service_id in range(10):
            shard = snapshot.shard_of(service_id)
            ids, vectors = snapshot.shard(shard)
            position = service_id - ids[0]
            assert np.array_equal(vectors[position], snapshot.service([service_id])[0])

    def test_stale_read_protection(self, rng):
        clock = FakeClock()
        store = VersionedEmbeddingStore(rng.normal(size=(4, 4)), rng.normal(size=(5, 4)),
                                        clock=clock)
        assert store.snapshot(max_staleness_s=1.0).version == 0
        clock.advance(2.0)
        with pytest.raises(StaleReadError):
            store.snapshot(max_staleness_s=1.0)
        store.publish(rng.normal(size=(4, 4)), rng.normal(size=(5, 4)))
        assert store.snapshot(max_staleness_s=1.0).version == 1

    def test_dimension_checks(self, rng):
        store = VersionedEmbeddingStore(rng.normal(size=(4, 4)), rng.normal(size=(5, 4)))
        with pytest.raises(ValueError):
            store.publish(rng.normal(size=(4, 8)), rng.normal(size=(5, 8)))
        with pytest.raises(ValueError):
            VersionedEmbeddingStore(rng.normal(size=(4, 4)), rng.normal(size=(5, 3)))

    def test_version_atomicity_under_interleaved_reads(self):
        """Readers must never observe queries from one version paired with
        services from another, no matter how publishes interleave."""
        dim = 8

        def tables(version):
            return (np.full((5, dim), float(version)), np.full((7, dim), float(version)))

        store = VersionedEmbeddingStore(*tables(0))
        torn = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                snapshot = store.snapshot()
                query_fill = snapshot.queries[0, 0]
                service_fill = snapshot.services[0, 0]
                if query_fill != service_fill or snapshot.version != int(query_fill):
                    torn.append((snapshot.version, query_fill, service_fill))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for version in range(1, 200):
            store.publish(*tables(version))
        stop.set()
        for thread in threads:
            thread.join()
        assert torn == []
        assert store.version == 199


# --------------------------------------------------------------------- #
# Micro-batch scheduler
# --------------------------------------------------------------------- #
class TestBatchScheduler:
    @staticmethod
    def make(max_batch_size=4, max_wait_s=0.010):
        clock = FakeClock()
        batches = []

        def executor(batch):
            batches.append([(pending.query_id, pending.k) for pending in batch])
            return [pending.query_id * 10 for pending in batch]

        scheduler = BatchScheduler(executor, max_batch_size=max_batch_size,
                                   max_wait_s=max_wait_s, clock=clock)
        return scheduler, clock, batches

    def test_full_batch_dispatches_immediately(self):
        scheduler, _, batches = self.make(max_batch_size=3)
        handles = [scheduler.submit(query_id, 5) for query_id in range(3)]
        assert len(batches) == 1 and len(batches[0]) == 3  # coalesced into one call
        assert [handle.result(0) for handle in handles] == [0, 10, 20]
        assert scheduler.pending_count == 0

    def test_deadline_semantics(self):
        scheduler, clock, batches = self.make(max_batch_size=8, max_wait_s=0.010)
        handle = scheduler.submit(1, 5)
        assert scheduler.poll() == 0 and not handle.done  # before the deadline
        clock.advance(0.005)
        assert scheduler.poll() == 0 and not handle.done  # still within budget
        clock.advance(0.006)
        assert scheduler.poll() == 1 and handle.done  # oldest waited past max_wait
        assert handle.result(0) == 10

    def test_deadline_is_of_the_oldest_request(self):
        scheduler, clock, batches = self.make(max_batch_size=8, max_wait_s=0.010)
        scheduler.submit(1, 5)
        clock.advance(0.009)
        scheduler.submit(2, 5)  # young request must not reset the deadline
        clock.advance(0.002)
        assert scheduler.poll() == 2
        assert batches == [[(1, 5), (2, 5)]]

    def test_flush_ignores_deadline(self):
        scheduler, _, _ = self.make(max_batch_size=8, max_wait_s=10.0)
        handle = scheduler.submit(3, 2)
        assert scheduler.flush() == 1
        assert handle.result(0) == 30

    def test_executor_error_propagates_to_all_waiters(self):
        def executor(batch):
            raise RuntimeError("backend down")

        scheduler = BatchScheduler(executor, max_batch_size=2, clock=FakeClock())
        first, second = scheduler.submit(0, 1), scheduler.submit(1, 1)
        for handle in (first, second):
            with pytest.raises(RuntimeError, match="backend down"):
                handle.result(0)

    def test_background_thread_honours_deadline(self):
        done = threading.Event()

        def executor(batch):
            done.set()
            return [None] * len(batch)

        scheduler = BatchScheduler(executor, max_batch_size=64, max_wait_s=0.002)
        scheduler.start()
        try:
            scheduler.submit(0, 1)
            assert done.wait(timeout=2.0)  # flushed by the worker, not by size
        finally:
            scheduler.stop()

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            BatchScheduler(lambda batch: [], max_batch_size=0)
        with pytest.raises(ValueError):
            BatchScheduler(lambda batch: [], max_wait_s=-1.0)


# --------------------------------------------------------------------- #
# Result cache
# --------------------------------------------------------------------- #
class TestLRUTTLCache:
    def test_lru_eviction(self):
        cache = LRUTTLCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes recency
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = LRUTTLCache(capacity=8, ttl_s=1.0, clock=clock)
        cache.put("a", 1)
        assert cache.get("a") == 1
        clock.advance(1.5)
        assert cache.get("a") is None
        assert cache.expirations == 1

    def test_zero_capacity_disables_caching(self):
        cache = LRUTTLCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None and len(cache) == 0

    def test_invalidate_version(self):
        cache = LRUTTLCache(capacity=8)
        cache.put((1, 10, 0), "v0")
        cache.put((1, 10, 1), "v1")
        assert cache.invalidate_version(0) == 1
        assert cache.get((1, 10, 0)) is None
        assert cache.get((1, 10, 1)) == "v1"


# --------------------------------------------------------------------- #
# Gateway end-to-end
# --------------------------------------------------------------------- #
class TestServingGateway:
    @staticmethod
    def make_gateway(clustered, **kwargs):
        queries, services = clustered
        store = VersionedEmbeddingStore(queries, services, num_shards=4)
        defaults = dict(index="ivf", top_k=10, max_batch_size=16)
        defaults.update(kwargs)
        return ServingGateway(store, **defaults)

    def test_gateway_recall_probe(self, clustered):
        gateway = self.make_gateway(clustered)
        assert gateway.recall_probe(k=10, num_queries=128, seed=0) >= 0.9
        assert gateway.telemetry.recall_at_k >= 0.9

    def test_rank_matches_index_search(self, clustered):
        queries, services = clustered
        gateway = self.make_gateway(clustered)
        expected, _ = IVFIndex(seed=0).build(services).search(queries[[7]], 10)
        assert gateway.rank(7) == [int(i) for i in expected[0] if i >= 0]

    def test_batch_coalesces_duplicate_queries(self, clustered):
        gateway = self.make_gateway(clustered)
        results = gateway.rank_batch([5, 9, 5, 9, 5], k=6)
        assert results[0] == results[2] == results[4]
        summary = gateway.summary()
        assert summary["requests"] == 5
        assert summary["backend_queries"] == 2  # five requests, two unique lookups

    def test_repeat_requests_hit_cache(self, clustered):
        gateway = self.make_gateway(clustered)
        first = gateway.rank(3)
        second = gateway.rank(3)
        assert first == second
        assert gateway.cache.hits == 1
        assert gateway.summary()["cache_hit_rate"] == 0.5

    def test_cache_invalidation_on_hot_swap(self, clustered):
        queries, services = clustered
        gateway = self.make_gateway(clustered)
        before = gateway.rank(0)
        assert gateway.cache.hits == 0
        # New embeddings concentrate every query on service 0: any cached
        # pre-swap result would be visibly stale.
        new_queries = np.ones_like(queries)
        new_services = np.zeros_like(services)
        new_services[0] = 1.0
        version = gateway.hot_swap(new_queries, new_services)
        assert version == 1
        after = gateway.rank(0)
        assert after != before and after[0] == 0
        assert gateway.cache.hits == 0  # the stale entry was never served
        assert gateway.summary()["hot_swaps"] == 1

    def test_bad_request_fails_alone_not_its_batch(self, clustered):
        gateway = self.make_gateway(clustered, max_batch_size=8)
        good = gateway.submit(3)
        bad = gateway.submit(10**6)  # out of range — must not poison the batch
        gateway.flush()
        ids, _ = good.result(0)
        assert len(ids) == 10
        with pytest.raises(IndexError, match="out of range"):
            bad.result(0)

    def test_stale_read_budget_enforced(self, clustered):
        queries, services = clustered
        clock = FakeClock()
        store = VersionedEmbeddingStore(queries, services, clock=clock)
        gateway = ServingGateway(store, index="exact", max_staleness_s=60.0, clock=clock)
        assert gateway.rank(1)
        clock.advance(120.0)
        pending = gateway.submit(1)
        gateway.flush()
        with pytest.raises(StaleReadError):
            pending.result(0)
        gateway.hot_swap(queries, services)  # the daily refresh clears the condition
        assert gateway.rank(1)

    def test_deploy_gateway_from_model(self, tiny_scenario):
        from repro.models import LightGCN

        model = LightGCN(tiny_scenario.graph, embedding_dim=8, seed=0)
        gateway = deploy_gateway(model, index="exact", top_k=4)
        ranked = gateway.rank(0)
        assert len(ranked) == 4
        assert all(0 <= sid < tiny_scenario.dataset.num_services for sid in ranked)
        assert gateway.hot_swap_from_model(model) == 1

    def test_gateway_is_a_valid_ab_ranker(self, tiny_scenario):
        from repro.eval.ab_test import ABTestConfig, OnlineABTest
        from repro.models import LightGCN

        model = LightGCN(tiny_scenario.graph, embedding_dim=8, seed=0)
        gateway = deploy_gateway(model, index="ivf", top_k=3)
        test = OnlineABTest(
            tiny_scenario.dataset, tiny_scenario.oracle,
            config=ABTestConfig(num_days=1, sessions_per_day=50, top_k=3, seed=0),
        )
        outcome = test.run(gateway, gateway)
        assert outcome.baseline[0].impressions > 0

    def test_pipeline_ann_scoring_mode(self, clustered):
        queries, services = clustered
        pipeline = ServingPipeline(EmbeddingStore(queries, services),
                                   top_k=5, scoring="ann")
        ranked = pipeline.rank(3)
        assert len(ranked) == 5
        exact = ServingPipeline(EmbeddingStore(queries, services),
                                top_k=5, scoring="inner_product")
        overlap = len(set(ranked) & set(exact.rank(3)))
        assert overlap >= 4  # ANN tracks the exact scan closely here
        # candidate restriction falls back to the exact subset scan
        restricted = pipeline.ranking.rank(3, 2, candidate_ids=[1, 2, 3])
        assert set(restricted) <= {1, 2, 3}


# --------------------------------------------------------------------- #
# Serving metrics + workload helpers
# --------------------------------------------------------------------- #
class TestServingMetrics:
    def test_recall_at_k_handles_padding(self):
        exact = np.array([[1, 2, 3], [4, 5, 6]])
        approx = np.array([[1, 2, -1], [6, 5, 4]])
        assert recall_at_k(approx, exact, 3) == pytest.approx((2 / 3 + 1.0) / 2)
        with pytest.raises(ValueError):
            recall_at_k(approx, exact, 0)

    def test_latency_percentiles(self):
        stats = latency_percentiles([0.001] * 99 + [0.101])
        assert stats["p50_ms"] == pytest.approx(1.0)
        assert stats["p99_ms"] > 1.0
        assert np.isnan(latency_percentiles([])["p50_ms"])

    def test_summaries_round_trip(self, clustered):
        gateway = TestServingGateway.make_gateway(clustered)
        gateway.rank_batch(range(10))
        gateway.recall_probe(k=10, num_queries=32)
        summary = summarize_gateway("ivf", gateway)
        row = summary.as_row()
        assert row["mode"] == "ivf" and row["requests"] == 10
        assert row["qps"] > 0 and row["recall_at_k"] >= 0.9
        manual = summarize_load_test("m", [0.001, 0.002], elapsed_s=0.5, recall=1.0)
        assert manual.qps == pytest.approx(4.0)
        with pytest.raises(ValueError):
            summarize_load_test("m", [0.001], elapsed_s=0.0, recall=1.0)

    def test_zipf_stream_is_heavy_tailed(self):
        stream = zipf_query_ids(1000, 20_000, exponent=1.1, seed=0)
        assert stream.min() >= 0 and stream.max() < 1000
        _, counts = np.unique(stream, return_counts=True)
        top_share = np.sort(counts)[::-1][:10].sum() / stream.size
        assert top_share > 0.15  # ten hottest queries carry a large share

    def test_clustered_embeddings_shapes_and_determinism(self):
        q1, s1 = clustered_embeddings(10, 20, 8, seed=5)
        q2, s2 = clustered_embeddings(10, 20, 8, seed=5)
        assert q1.shape == (10, 8) and s1.shape == (20, 8)
        assert np.array_equal(q1, q2) and np.array_equal(s1, s2)
