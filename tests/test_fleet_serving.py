"""Tests for the replicated gateway fleet (``repro.serving.fleet``).

Covers the shared hashing primitive (rendezvous determinism, balance,
weights, and the BucketRouter refit cross-check), the health policy's
hysteresis state machine, the router's routing/fallback/failover
semantics, the chaos controller (kill / stall / slow, seeded storms),
trace grafting, and the fleet-as-A/B-arm integration.  The randomized
minimal-disruption and no-double-count properties live in
``tests/test_fleet_properties.py``.
"""

import asyncio

import numpy as np
import pytest

from repro.serving.abtest import (
    ABExperimentConfig,
    BucketRouter,
    OnlineABExperiment,
)
from repro.serving.fleet import (
    ChaosController,
    ChaosEvent,
    FleetRouter,
    FleetUnavailableError,
    HealthPolicy,
    ReplicaHealth,
    deploy_fleet,
    rendezvous_choose,
    rendezvous_rank,
)
from repro.serving.gateway import (
    DeadlineExceededError,
    OverloadError,
    ServingGateway,
    VersionedEmbeddingStore,
    flash_crowd_gaps,
    poisson_gaps,
)
from repro.serving.obs.health import HealthSnapshot
from repro.serving.obs.ids import ids_to_u64, key_to_u64, mix64, splitmix64

DIM = 8
NUM_QUERIES = 40
NUM_SERVICES = 30


def make_store(seed: int = 0, num_queries: int = NUM_QUERIES) -> VersionedEmbeddingStore:
    rng = np.random.default_rng(seed)
    queries = rng.normal(size=(num_queries, DIM))
    services = rng.normal(size=(NUM_SERVICES, DIM))
    return VersionedEmbeddingStore(queries, services)


def make_fleet(num_replicas: int = 3, store=None, policy=None,
               max_failovers: int = 1, fleet_salt: int = 0,
               **gateway_kwargs) -> FleetRouter:
    store = store if store is not None else make_store()
    gateway_kwargs.setdefault("index", "exact")
    gateway_kwargs.setdefault("top_k", 5)
    gateway_kwargs.setdefault("max_batch_size", 8)
    gateway_kwargs.setdefault("max_wait_s", 0.001)
    gateway_kwargs.setdefault("cache_capacity", 0)
    gateways = {
        f"replica-{i}": ServingGateway(store, **gateway_kwargs)
        for i in range(num_replicas)
    }
    return FleetRouter(gateways, policy=policy, salt=fleet_salt,
                       max_failovers=max_failovers)


def run(coro):
    return asyncio.run(coro)


async def drive_fleet(fleet, session_ids, deadline_s=None, tag=None):
    """Drive sessions through the fleet; returns (answered, shed, missed)."""
    answered = shed = missed = 0
    for session_id in session_ids:
        try:
            await fleet.search_async(int(session_id) % NUM_QUERIES,
                                     deadline_s=deadline_s, tag=tag,
                                     session_id=int(session_id))
        except OverloadError:
            shed += 1
        except DeadlineExceededError:
            missed += 1
        else:
            answered += 1
    return answered, shed, missed


# --------------------------------------------------------------------- #
# Rendezvous hashing
# --------------------------------------------------------------------- #
class TestRendezvousHashing:
    def test_deterministic_and_salt_sensitive(self):
        nodes = ["a", "b", "c", "d"]
        picks = [rendezvous_choose(key, nodes) for key in range(200)]
        again = [rendezvous_choose(key, nodes) for key in range(200)]
        assert picks == again
        salted = [rendezvous_choose(key, nodes, salt=99) for key in range(200)]
        assert picks != salted

    def test_roughly_balanced(self):
        nodes = ["a", "b", "c", "d"]
        counts = {node: 0 for node in nodes}
        for key in range(8_000):
            counts[rendezvous_choose(key, nodes)] += 1
        for node in nodes:
            assert 0.8 * 2_000 < counts[node] < 1.2 * 2_000

    def test_rank_head_is_choice(self):
        nodes = ["a", "b", "c"]
        for key in range(100):
            assert rendezvous_rank(key, nodes)[0] == rendezvous_choose(key, nodes)

    def test_minimal_disruption_on_removal(self):
        nodes = ["a", "b", "c", "d"]
        keys = list(range(2_000))
        before = {key: rendezvous_choose(key, nodes) for key in keys}
        survivors = [node for node in nodes if node != "b"]
        for key in keys:
            after = rendezvous_choose(key, survivors)
            if before[key] != "b":
                assert after == before[key]

    def test_weights_skew_placement(self):
        nodes = ["small", "big"]
        counts = {node: 0 for node in nodes}
        for key in range(9_000):
            counts[rendezvous_choose(key, nodes, weights=[1.0, 2.0])] += 1
        share = counts["big"] / 9_000
        assert 0.60 < share < 0.73  # expected 2/3

    def test_validation(self):
        with pytest.raises(ValueError):
            rendezvous_choose(1, [])
        with pytest.raises(ValueError):
            rendezvous_choose(1, ["a", "b"], weights=[1.0])
        with pytest.raises(ValueError):
            rendezvous_rank(1, ["a"], weights=[0.0])


class TestSharedPrimitiveRefit:
    def test_bucket_fractions_match_legacy_formula(self):
        """The mix64 refit reproduces the pre-refactor hash bit for bit."""
        ids = np.arange(5_000)
        for salt in (0, 7, 42, "exp-2022-10"):
            router = BucketRouter({"control": 0.9, "treatment": 0.1}, salt=salt)
            # The legacy formula, inlined: finalise the salt, xor, finalise.
            legacy_salt = splitmix64(np.asarray([key_to_u64(salt)],
                                                dtype=np.uint64))[0]
            legacy = splitmix64(ids_to_u64(ids) ^ legacy_salt)
            expected = legacy.astype(np.float64) / float(2**64)
            np.testing.assert_array_equal(router.fractions(ids), expected)

    def test_bucket_assignments_pinned_at_fixed_seed(self):
        """Frozen assignments: a hash change would re-bucket real logs."""
        router = BucketRouter({"control": 0.9, "treatment": 0.1}, salt=42)
        assignments = router.assign_many([0, 1, 2, 3, 4, 17, 1234, 99999])
        assert assignments == [
            "control", "treatment", "control", "treatment",
            "control", "treatment", "control", "control",
        ]

    def test_mix64_matches_scalar_and_vector(self):
        from repro.serving.obs.ids import mix64_int

        values = np.arange(100, dtype=np.uint64)
        vector = mix64(values, salt=123)
        for value, mixed in zip(values, vector):
            assert mix64_int(int(value), 123) == int(mixed)


# --------------------------------------------------------------------- #
# Health policy + hysteresis
# --------------------------------------------------------------------- #
class TestHealthPolicy:
    def test_soft_score_terms(self):
        policy = HealthPolicy(queue_budget=10.0, shed_budget=0.5)
        assert policy.soft_score(0, 10, 0) == 0.0
        assert policy.soft_score(5, 10, 0) == pytest.approx(0.5)
        assert policy.soft_score(0, 5, 5) == pytest.approx(1.0)  # 50% shed
        assert policy.soft_score(20, 0, 0) == pytest.approx(2.0)

    def test_hysteresis_band_must_have_width(self):
        with pytest.raises(ValueError):
            HealthPolicy(eject_score=1.0, readmit_score=1.0)

    def test_eject_requires_consecutive_bad_probes(self):
        policy = HealthPolicy(eject_after=2, readmit_after=2)
        health = ReplicaHealth()
        assert health.observe(policy, 2.0, 0.0) == ""
        assert health.observe(policy, 0.0, 0.0) == ""  # streak broken
        assert health.observe(policy, 2.0, 0.0) == ""
        assert health.observe(policy, 2.0, 0.0) == "eject"
        assert not health.up
        assert health.reason == "degraded"

    def test_readmit_requires_consecutive_good_probes(self):
        policy = HealthPolicy(eject_after=1, readmit_after=2,
                              readmit_score=0.5)
        health = ReplicaHealth()
        assert health.observe(policy, 2.0, 0.0) == "eject"
        assert health.observe(policy, 0.0, 0.0) == ""
        assert health.observe(policy, 0.8, 0.0) == ""  # in-band: resets
        assert health.observe(policy, 0.0, 0.0) == ""
        assert health.observe(policy, 0.0, 0.0) == "readmit"
        assert health.up and health.reason == ""

    def test_observe_allow_eject_false_suppresses_soft_ejection(self):
        policy = HealthPolicy(eject_after=2)
        health = ReplicaHealth()
        for _ in range(5):
            assert health.observe(policy, 2.0, 0.0, allow_eject=False) == ""
        assert health.up
        assert health.bad_streak == policy.eject_after  # stays saturated
        # The first bad probe after the guard lifts ejects immediately.
        assert health.observe(policy, 2.0, 0.0) == "eject"

    def test_mark_dead_is_immediate_and_idempotent(self):
        health = ReplicaHealth()
        assert health.mark_dead() is True
        assert health.mark_dead() is False  # already ejected: counted once
        assert health.reason == "dead"

    def test_pressure_is_worst_budget_utilisation(self):
        snapshot = HealthSnapshot(
            requests=100, qps=10.0, p50_ms=1.0, p99_ms=50.0,
            queue_depth_mean=8.0, queue_depth_max=16.0,
            loop_lag_mean_ms=1.0, loop_lag_max_ms=2.0,
            overload_rejections=0, deadline_misses=0,
            cancelled_requests=0, shed_rate=0.0)
        assert snapshot.pressure(p99_budget_ms=100.0, queue_budget=16.0,
                                 loop_lag_budget_ms=100.0) == pytest.approx(0.5)
        # Unconfigured budgets contribute nothing.
        assert snapshot.pressure() == 0.0


# --------------------------------------------------------------------- #
# Fleet routing
# --------------------------------------------------------------------- #
class TestFleetRouting:
    def test_sessions_are_sticky(self):
        fleet = make_fleet(3)
        first = {key: fleet.route(key)[0].name for key in range(300)}
        second = {key: fleet.route(key)[0].name for key in range(300)}
        assert first == second
        assert len(set(first.values())) == 3  # all replicas own traffic
        fleet.close()

    def test_route_matches_shared_rendezvous_helper(self):
        fleet = make_fleet(3)
        names = [replica.name for replica in fleet.replicas]
        for key in range(200):
            replica, policy = fleet.route(key)
            assert policy == "rendezvous"
            assert replica.name == rendezvous_choose(key, names)
        fleet.close()

    def test_ejection_moves_only_owned_sessions(self):
        fleet = make_fleet(3)
        before = {key: fleet.route(key)[0].name for key in range(500)}
        victim = "replica-1"
        fleet.replica(victim).health.mark_dead()
        for key in range(500):
            after = fleet.route(key)[0].name
            if before[key] != victim:
                assert after == before[key]
            else:
                assert after != victim
        fleet.close()

    def test_no_eligible_replica_is_an_explicit_shed(self):
        fleet = make_fleet(2)
        for replica in fleet.replicas:
            replica.health.mark_dead()
        with pytest.raises(FleetUnavailableError):
            fleet.route(1)
        # FleetUnavailableError is an OverloadError: existing drivers and
        # the A/B cost ledger account it as shed traffic unchanged.
        assert issubclass(FleetUnavailableError, OverloadError)
        fleet.close()

    def test_pressured_owner_falls_back_to_least_loaded(self):
        fleet = make_fleet(2, policy=HealthPolicy(fallback_pressure=1.0))
        owner, _ = fleet.route(7)
        owner.health.last_pressure = 2.0  # over budget, still in the set
        replica, policy = fleet.route(7)
        assert policy == "least_loaded"
        assert replica.name != owner.name
        owner.health.last_pressure = 0.0
        replica, policy = fleet.route(7)
        assert policy == "rendezvous" and replica.name == owner.name
        fleet.close()

    def test_degradation_never_ejects_the_last_replica(self):
        policy = HealthPolicy(queue_budget=1.0, eject_after=1,
                              readmit_after=1, probe_interval_s=1000.0)
        fleet = make_fleet(2, policy=policy)
        try:
            fleet.replica("replica-0").kill()
            fleet.check_replicas(force=True)  # dead probe ejects replica-0
            survivor = fleet.replica("replica-1")
            core = survivor.gateway.scheduler.async_scheduler
            # Fake a backlog far past queue_budget (no drive task runs
            # here, so the sentinel entries are never dispatched).
            core._queue.extend([object()] * 8)
            for _ in range(3):
                fleet.check_replicas(force=True)
            # Eject-worthy score, but the fleet refuses to go empty.
            assert survivor.health.up
            assert [r.name for r in fleet.eligible()] == ["replica-1"]
            # The guard lifts the moment another replica rejoins: one pass
            # readmits replica-0 and immediately ejects the saturated one.
            fleet.replica("replica-0").revive()
            transitions = fleet.check_replicas(force=True)
            assert ("replica-0", "readmit") in transitions
            assert ("replica-1", "eject") in transitions
            core._queue.clear()
        finally:
            fleet.close()

    def test_search_answers_and_counts(self):
        fleet = make_fleet(3)

        async def scenario():
            answered, shed, missed = await drive_fleet(fleet, range(120))
            assert (answered, shed, missed) == (120, 0, 0)
            await fleet.stop_async()

        run(scenario())
        summary = fleet.summary()
        assert summary["requests"] == 120.0
        assert summary["failovers"] == 0.0
        routed = {row["replica"]: row["routed"] for row in fleet.replica_rows()}
        assert sum(routed.values()) == 120.0
        assert all(count > 0 for count in routed.values())
        fleet.close()


# --------------------------------------------------------------------- #
# Failover
# --------------------------------------------------------------------- #
class TestFailover:
    def test_dead_replica_fails_over_and_is_ejected(self):
        # A long probe interval keeps the ejection path passive: the death
        # must be discovered by the failed attempt itself, not by a probe.
        fleet = make_fleet(3, policy=HealthPolicy(probe_interval_s=1000.0))
        victim = fleet.route(0)[0]  # owner of session 0

        async def scenario():
            await fleet.search_async(5, session_id=999_999)  # initial probe
            victim.kill()
            ids, _scores = await fleet.search_async(0, session_id=0)
            assert len(ids) > 0
            await fleet.stop_async()

        run(scenario())
        assert not victim.health.up and victim.health.reason == "dead"
        summary = fleet.summary()
        assert summary["failovers"] == 1.0
        assert summary["ejections"] == 1.0
        assert summary["requests"] == 2.0  # each request answered once
        fleet.close()

    def test_failover_carries_remaining_deadline_budget(self):
        fleet = make_fleet(3, policy=HealthPolicy(probe_interval_s=1000.0))
        victim = fleet.route(0)[0]
        granted = []

        def wrap(replica):
            original = replica.submit_async

            def capture(query_id, k=None, deadline_s=None, tag=None,
                        _original=original):
                granted.append(deadline_s)
                return _original(query_id, k, deadline_s=deadline_s, tag=tag)

            replica.submit_async = capture

        async def scenario():
            await fleet.search_async(5, session_id=999_999)  # initial probe
            victim.kill()
            for replica in fleet.replicas:
                if replica is not victim:
                    wrap(replica)
            await fleet.search_async(0, session_id=0, deadline_s=5.0)
            await fleet.stop_async()

        run(scenario())
        assert len(granted) == 1
        # The retry's budget is what remains of the original 5 s, not a
        # fresh 5 s: time burned on the dead attempt is not granted back.
        assert granted[0] is not None and 0.0 < granted[0] < 5.0
        fleet.close()

    def test_exhausted_deadline_is_a_deadline_miss_not_a_retry(self):
        fleet = make_fleet(2)

        async def scenario():
            with pytest.raises(DeadlineExceededError):
                await fleet.search_async(0, session_id=0, deadline_s=-1.0)
            await fleet.stop_async()

        run(scenario())
        assert fleet.summary()["deadline_misses"] == 1.0
        fleet.close()

    def test_at_most_once_reexecution(self):
        fleet = make_fleet(3, max_failovers=1)
        for replica in fleet.replicas:
            replica.kill()

        async def scenario():
            with pytest.raises(FleetUnavailableError):
                await fleet.search_async(0, session_id=0)
            await fleet.stop_async()

        run(scenario())
        # All replicas dead at admission: first route hits a dead replica,
        # one failover is attempted, then the request sheds explicitly.
        summary = fleet.summary()
        assert summary["unavailable"] == 1.0
        assert summary["failovers"] <= 1.0
        fleet.close()

    def test_storm_with_kill_loses_nothing(self):
        fleet = make_fleet(3)
        victim = fleet.route(0)[0]

        async def scenario():
            answered, shed, missed = await drive_fleet(fleet, range(100))
            victim.kill()
            answered2, shed2, missed2 = await drive_fleet(
                fleet, range(100, 300))
            await fleet.stop_async()
            return answered + answered2, shed + shed2, missed + missed2

        answered, shed, missed = run(scenario())
        assert answered + shed + missed == 300  # every request accounted
        assert missed == 0 and shed == 0  # two healthy replicas absorb it
        assert fleet.summary()["requests"] == float(answered)
        fleet.close()


# --------------------------------------------------------------------- #
# Chaos controller
# --------------------------------------------------------------------- #
class TestChaosController:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            ChaosEvent(at_s=0.0, action="explode", replica="replica-0")
        with pytest.raises(ValueError):
            ChaosEvent(at_s=-1.0, action="kill", replica="replica-0")
        fleet = make_fleet(2)
        with pytest.raises(KeyError):
            ChaosController(fleet, [ChaosEvent(0.0, "kill", "nope")])
        fleet.close()

    def test_seeded_storm_is_reproducible(self):
        fleet_a = make_fleet(3)
        fleet_b = make_fleet(3)
        plan_a = ChaosController.seeded_storm(
            fleet_a, seed=5, storm_s=2.0, actions=("kill", "stall", "slow"))
        plan_b = ChaosController.seeded_storm(
            fleet_b, seed=5, storm_s=2.0, actions=("kill", "stall", "slow"))
        assert plan_a.events == plan_b.events
        other = ChaosController.seeded_storm(
            fleet_a, seed=6, storm_s=2.0, actions=("kill", "stall", "slow"))
        assert plan_a.events != other.events
        for event in plan_a.events:
            assert 0.5 <= event.at_s <= 1.5  # mid-storm by construction
        fleet_a.close()
        fleet_b.close()

    def test_tick_applies_due_events_in_order(self):
        now = [0.0]
        fleet = make_fleet(2)
        controller = ChaosController(
            fleet,
            [ChaosEvent(1.0, "kill", "replica-0"),
             ChaosEvent(2.0, "revive", "replica-0")],
            clock=lambda: now[0])
        controller.arm()
        assert controller.tick() == 0
        assert not fleet.replica("replica-0").dead
        now[0] = 1.5
        assert controller.tick() == 1
        assert fleet.replica("replica-0").dead
        now[0] = 2.5
        assert controller.tick() == 1
        assert not fleet.replica("replica-0").dead
        assert controller.exhausted
        assert [row["action"] for row in controller.log()] == ["kill", "revive"]
        fleet.close()

    def test_stall_ejects_then_readmits(self):
        # Probes fire only when forced (long interval), so the state
        # machine advances exactly when the test says it does.
        policy = HealthPolicy(queue_budget=4.0, probe_interval_s=1000.0,
                              eject_after=2, readmit_after=2)
        fleet = make_fleet(2, policy=policy,
                           max_queue=256, overload="reject")
        victim = fleet.route(0)[0]

        async def scenario():
            victim.stall(0.25)
            # Submit a burst at the stalled owner: its batch pipeline is
            # blocked, so its queue builds and probes see it.
            tasks = [
                asyncio.ensure_future(
                    fleet.search_async(i % NUM_QUERIES, session_id=0,
                                       deadline_s=2.0))
                for i in range(16)
            ]
            await asyncio.sleep(0.05)
            assert victim.queue_depth >= 4  # pipeline blocked behind stall
            fleet.check_replicas(force=True)
            fleet.check_replicas(force=True)
            assert not victim.health.up
            assert victim.health.reason == "degraded"
            await asyncio.gather(*tasks, return_exceptions=True)
            # After the stall clears and the queue drains, consecutive
            # clean probes readmit the replica.
            await asyncio.sleep(0.25)
            fleet.check_replicas(force=True)
            fleet.check_replicas(force=True)
            assert victim.health.up
            await fleet.stop_async()

        run(scenario())
        summary = fleet.summary()
        assert summary["ejections"] >= 1.0
        assert summary["readmissions"] >= 1.0
        fleet.close()

    def test_slow_roll_stretches_service_time(self):
        fleet = make_fleet(1)
        replica = fleet.replicas[0]

        async def timed(label):
            started = fleet.clock()
            await fleet.search_async(1, session_id=1)
            return fleet.clock() - started

        async def scenario():
            baseline = await timed("fast")
            replica.slow(50.0)
            slowed = await timed("slow")
            await fleet.stop_async()
            return baseline, slowed

        baseline, slowed = run(scenario())
        assert slowed > baseline
        fleet.close()


# --------------------------------------------------------------------- #
# Observability integration
# --------------------------------------------------------------------- #
class TestFleetObservability:
    def test_fleet_router_span_is_grafted_into_the_trace(self):
        fleet = make_fleet(2, tracing=True, trace_sample_every=1)

        async def scenario():
            await fleet.search_async(3, session_id=3)
            await fleet.stop_async()

        run(scenario())
        traces = [
            trace
            for replica in fleet.replicas
            for trace in replica.gateway.flight_recorder.dump()
        ]
        assert len(traces) == 1
        spans = {span.name: span for span in traces[0].spans()}
        assert "fleet_router" in spans
        assert spans["fleet_router"].attrs["policy"] == "rendezvous"
        assert spans["fleet_router"].attrs["attempt"] == 0
        assert spans["fleet_router"].attrs["replica"] in (
            "replica-0", "replica-1")
        fleet.close()

    def test_bucket_rows_attribute_fleet_traffic_by_tag(self):
        fleet = make_fleet(2)

        async def scenario():
            for session in range(40):
                tag = "treatment" if session % 4 == 0 else "control"
                await fleet.search_async(session % NUM_QUERIES,
                                         session_id=session, tag=tag)
            await fleet.stop_async()

        run(scenario())
        rows = {row["bucket"]: row for row in fleet.telemetry.bucket_rows()}
        assert rows["treatment"]["requests"] == 10
        assert rows["control"]["requests"] == 30
        fleet.close()


# --------------------------------------------------------------------- #
# Fleet as an A/B arm
# --------------------------------------------------------------------- #
class _StubDataset:
    num_queries = NUM_QUERIES

    def query_frequencies(self):
        return np.ones(NUM_QUERIES)


class _StubOracle:
    def click_probability(self, query_ids, service_ids):
        return np.full(len(np.asarray(service_ids)), 0.4)

    def conversion_probability(self, query_ids, service_ids):
        return np.full(len(np.asarray(service_ids)), 0.5)


class TestFleetAsABArm:
    def _run(self, treatment, **config_kwargs):
        control = ServingGateway(make_store(), index="exact", top_k=5,
                                 cache_capacity=0)
        router = BucketRouter(
            {"control": 0.5, "treatment": 0.5},
            arms={"control": control, "treatment": treatment}, salt=7)
        defaults = dict(num_days=1, sessions_per_day=120, top_k=5,
                        rate_qps=None, seed=3)
        defaults.update(config_kwargs)
        experiment = OnlineABExperiment(
            _StubDataset(), _StubOracle(), router,
            ABExperimentConfig(**defaults))
        return experiment.run()

    def test_fleet_arm_serves_its_bucket(self):
        fleet = make_fleet(2)
        report = self._run(fleet)
        assert report.sessions["treatment"] > 0
        assert report.shed == {"control": 0, "treatment": 0}
        # The fleet's bucket_rows land in the cost report like a gateway's.
        fleet_rows = [row for row in report.cost
                      if row.get("bucket") == "treatment"]
        assert fleet_rows and fleet_rows[0]["requests"] == float(
            report.sessions["treatment"])
        fleet.close()

    def test_fleet_arm_with_mid_storm_kill_counts_impressions_once(self):
        fleet = make_fleet(3)
        victim = fleet.replicas[0]
        controller = ChaosController(
            fleet, [ChaosEvent(0.0, "kill", victim.name)])
        controller.arm()
        report = self._run(fleet)
        day = report.daily["treatment"][0]
        answered = report.sessions["treatment"] - report.shed["treatment"]
        # Exactly top_k impressions per answered session — a double-served
        # failover would double a session's impressions and break this.
        assert day.impressions == 5 * answered
        assert report.shed["treatment"] == 0  # the fleet absorbed the kill
        assert not victim.health.up
        fleet.close()


# --------------------------------------------------------------------- #
# Load shapes
# --------------------------------------------------------------------- #
class TestLoadShapes:
    def test_poisson_gaps_seeded(self):
        np.testing.assert_array_equal(poisson_gaps(100, 50.0, seed=4),
                                      poisson_gaps(100, 50.0, seed=4))
        assert not np.array_equal(poisson_gaps(100, 50.0, seed=4),
                                  poisson_gaps(100, 50.0, seed=5))

    def test_flash_crowd_degenerates_to_poisson(self):
        np.testing.assert_array_equal(
            flash_crowd_gaps(500, 80.0, spike_factor=1.0, seed=2),
            poisson_gaps(500, 80.0, seed=2))

    def test_flash_crowd_spike_window_is_faster(self):
        gaps = flash_crowd_gaps(4_000, 100.0, spike_factor=10.0,
                                spike_start=0.45, spike_width=0.1, seed=0)
        spike = gaps[1_800:2_200].mean()
        base = gaps[:1_800].mean()
        assert base / spike > 5.0  # 10x rate => ~10x smaller gaps

    def test_flash_crowd_validation(self):
        with pytest.raises(ValueError):
            flash_crowd_gaps(10, 100.0, spike_factor=0.5)
        with pytest.raises(ValueError):
            flash_crowd_gaps(10, 100.0, spike_start=0.95, spike_width=0.1)

    def test_ab_config_flash_crowd_replay(self):
        config = ABExperimentConfig(
            num_days=1, sessions_per_day=80, top_k=5, rate_qps=2_000.0,
            load_shape="flash_crowd", spike_factor=5.0, seed=3)
        control = ServingGateway(make_store(), index="exact", top_k=5,
                                 cache_capacity=0)
        router = BucketRouter({"control": 0.5, "treatment": 0.5},
                              arms={"control": control, "treatment": control},
                              salt=7)
        report = OnlineABExperiment(_StubDataset(), _StubOracle(), router,
                                    config).run()
        assert sum(report.sessions.values()) == 80


# --------------------------------------------------------------------- #
# Lifecycle
# --------------------------------------------------------------------- #
class TestFleetLifecycle:
    def test_deploy_fleet_shares_one_store(self):
        class StubModel:
            def query_embeddings(self):
                return np.random.default_rng(0).normal(size=(NUM_QUERIES, DIM))

            def service_embeddings(self):
                return np.random.default_rng(1).normal(size=(NUM_SERVICES, DIM))

        fleet = deploy_fleet(StubModel(), num_replicas=3, index="exact",
                             top_k=5, cache_capacity=0)
        stores = {id(replica.gateway.store) for replica in fleet.replicas}
        assert len(stores) == 1
        assert len(fleet.replicas) == 3

        async def scenario():
            ids, _ = await fleet.search_async(1, session_id=1)
            assert len(ids) == 5
            await fleet.stop_async()

        run(scenario())
        fleet.close()

    def test_drain_completes_queued_work(self):
        fleet = make_fleet(2)

        async def scenario():
            tasks = [
                asyncio.ensure_future(
                    fleet.search_async(i % NUM_QUERIES, session_id=i))
                for i in range(30)
            ]
            await fleet.drain_async()
            results = await asyncio.gather(*tasks)
            assert len(results) == 30

        run(scenario())
        fleet.close()

    def test_replica_weight_validation(self):
        with pytest.raises(ValueError):
            make_fleet(0)
        store = make_store()
        with pytest.raises(ValueError):
            FleetRouter({"a": ServingGateway(store, index="exact")},
                        max_failovers=-1)
