"""Tests for the synthetic long-tail data generator and its click oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.schema import CORRELATION_ATTRIBUTES
from repro.data.synthetic import SyntheticConfig, SyntheticDataGenerator, generate_dataset


SMALL_CONFIG = SyntheticConfig(
    name="unit",
    num_queries=120,
    num_services=40,
    num_interactions=3_000,
    total_page_views=50_000,
    num_intention_trees=3,
    intention_depth=4,
    head_fraction=0.05,
    seed=3,
)


@pytest.fixture(scope="module")
def generated():
    generator = SyntheticDataGenerator(SMALL_CONFIG)
    dataset = generator.generate()
    return generator, dataset


class TestConfigValidation:
    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_queries=0)
        with pytest.raises(ValueError):
            SyntheticConfig(num_interactions=0)

    def test_depth_bounds(self):
        with pytest.raises(ValueError):
            SyntheticConfig(intention_depth=6)
        with pytest.raises(ValueError):
            SyntheticConfig(intention_depth=0)

    def test_head_fraction_bounds(self):
        with pytest.raises(ValueError):
            SyntheticConfig(head_fraction=0.0)
        with pytest.raises(ValueError):
            SyntheticConfig(zipf_exponent=0.0)


class TestGeneratedEntities:
    def test_counts_match_config(self, generated):
        _, dataset = generated
        assert dataset.num_queries == SMALL_CONFIG.num_queries
        assert dataset.num_services == SMALL_CONFIG.num_services
        assert dataset.num_interactions >= SMALL_CONFIG.num_interactions * 0.8

    def test_dataset_passes_validation(self, generated):
        _, dataset = generated
        dataset.validate()

    def test_intention_forest_depth_and_trees(self, generated):
        _, dataset = generated
        levels = [i.level for i in dataset.intentions]
        trees = {i.tree_id for i in dataset.intentions}
        assert max(levels) == SMALL_CONFIG.intention_depth
        assert len(trees) == SMALL_CONFIG.num_intention_trees

    def test_every_entity_attached_to_leaf_intention(self, generated):
        _, dataset = generated
        for query in dataset.queries:
            assert dataset.intention_by_id(query.intention_id).is_leaf
        for service in dataset.services:
            assert dataset.intention_by_id(service.intention_id).is_leaf

    def test_entities_have_all_correlation_attributes(self, generated):
        _, dataset = generated
        for query in dataset.queries:
            assert set(CORRELATION_ATTRIBUTES) <= set(query.attributes)
        for service in dataset.services:
            assert set(CORRELATION_ATTRIBUTES) <= set(service.attributes)

    def test_service_quality_fields_in_range(self, generated):
        _, dataset = generated
        for service in dataset.services:
            assert service.mau >= 0
            assert 1 <= service.rating <= 5


class TestLongTailShape:
    def test_traffic_is_heavily_skewed(self, generated):
        _, dataset = generated
        frequencies = np.sort(dataset.query_frequencies())[::-1]
        head_count = max(1, int(round(0.05 * len(frequencies))))
        head_share = frequencies[:head_count].sum() / frequencies.sum()
        assert head_share > 0.6  # a handful of queries dominate traffic

    def test_every_query_has_positive_frequency(self, generated):
        _, dataset = generated
        assert dataset.query_frequencies().min() >= 1

    def test_head_queries_receive_more_exposures(self, generated):
        _, dataset = generated
        frequencies = dataset.query_frequencies()
        head_query = int(np.argmax(frequencies))
        tail_query = int(np.argmin(frequencies))
        exposures = np.bincount(
            [i.query_id for i in dataset.interactions], minlength=dataset.num_queries
        )
        assert exposures[head_query] > exposures[tail_query]

    def test_interactions_span_the_configured_days(self, generated):
        _, dataset = generated
        timestamps = {i.timestamp for i in dataset.interactions}
        assert min(timestamps) >= 0
        assert max(timestamps) < SMALL_CONFIG.num_days


class TestClickOracle:
    def test_probabilities_are_valid(self, generated):
        generator, dataset = generated
        queries = np.arange(dataset.num_queries)
        services = np.zeros(dataset.num_queries, dtype=int)
        clicks = generator.oracle.click_probability(queries, services)
        conversions = generator.oracle.conversion_probability(queries, services)
        assert np.all((clicks >= 0) & (clicks <= 1))
        assert np.all((conversions >= 0) & (conversions <= 1))

    def test_relevant_pairs_click_more(self, generated):
        generator, dataset = generated
        relevance = generator.oracle.relevance
        best = np.unravel_index(np.argmax(relevance), relevance.shape)
        worst = np.unravel_index(np.argmin(relevance), relevance.shape)
        best_p = generator.oracle.click_probability([best[0]], [best[1]])[0]
        worst_p = generator.oracle.click_probability([worst[0]], [worst[1]])[0]
        assert best_p > worst_p

    def test_same_intention_pairs_are_more_relevant_on_average(self, generated):
        generator, dataset = generated
        relevance = generator.oracle.relevance
        same, different = [], []
        for query in dataset.queries[:40]:
            for service in dataset.services:
                value = relevance[query.query_id, service.service_id]
                if query.intention_id == service.intention_id:
                    same.append(value)
                else:
                    different.append(value)
        if same and different:
            assert np.mean(same) > np.mean(different)


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        first = generate_dataset(SMALL_CONFIG)
        second = generate_dataset(SMALL_CONFIG)
        assert np.allclose(first.query_frequencies(), second.query_frequencies())
        assert first.interaction_array().tolist() == second.interaction_array().tolist()

    def test_different_seed_different_interactions(self):
        other = SyntheticConfig(**{**SMALL_CONFIG.__dict__, "seed": 99})
        first = generate_dataset(SMALL_CONFIG)
        second = generate_dataset(other)
        assert first.interaction_array().tolist() != second.interaction_array().tolist()


@settings(max_examples=5, deadline=None)
@given(
    num_queries=st.integers(30, 80),
    num_services=st.integers(10, 30),
    depth=st.integers(1, 5),
    seed=st.integers(0, 1000),
)
def test_generator_always_produces_consistent_datasets(num_queries, num_services, depth, seed):
    config = SyntheticConfig(
        num_queries=num_queries,
        num_services=num_services,
        num_interactions=800,
        total_page_views=5_000,
        intention_depth=depth,
        num_intention_trees=2,
        seed=seed,
    )
    dataset = generate_dataset(config)
    dataset.validate()
    assert dataset.num_queries == num_queries
    assert max(i.level for i in dataset.intentions) == depth
