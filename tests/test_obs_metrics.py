"""Tests for the bounded metrics core (``repro.serving.obs.metrics``) and
the histogram-backed :class:`GatewayTelemetry` built on top of it.

The properties pinned down here are the ones the observability layer
advertises: bucket-interpolated percentiles stay within the documented
relative-error bound of the exact order statistic, snapshot merging
commutes with observation (merge-of-snapshots == snapshot-of-merged),
label cardinality is capped by an explicit overflow series, telemetry
memory is O(buckets) regardless of traffic, and the Prometheus / JSON
export surfaces carry exactly the numbers ``summary()`` derives.
"""

import math

import numpy as np
import pytest

from repro.serving.gateway import GatewayTelemetry
from repro.serving.obs.metrics import (
    DEFAULT_LATENCY_BOUNDARIES,
    OVERFLOW_LABEL,
    RELATIVE_ERROR_BOUND,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    log_boundaries,
    sample_percentiles_ms,
)
from repro.serving.gateway.telemetry import OVERFLOW_SHARD


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _random_samples(rng, distribution, size):
    if distribution == "lognormal":
        values = rng.lognormal(mean=-6.0, sigma=1.5, size=size)
    elif distribution == "exponential":
        values = rng.exponential(scale=0.01, size=size)
    elif distribution == "uniform":
        values = rng.uniform(1e-5, 2.0, size=size)
    elif distribution == "bimodal":
        fast = rng.lognormal(mean=-8.0, sigma=0.4, size=size // 2)
        slow = rng.lognormal(mean=-2.0, sigma=0.6, size=size - size // 2)
        values = np.concatenate([fast, slow])
    else:  # pragma: no cover - guard against typos in the parametrize list
        raise AssertionError(distribution)
    # Keep every sample strictly inside the default boundary range so the
    # documented bound applies (outside it the clamp rules take over).
    return np.clip(values, 2e-6, 50.0)


class TestBucketPercentiles:
    @pytest.mark.parametrize(
        "distribution", ["lognormal", "exponential", "uniform", "bimodal"]
    )
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_percentiles_within_documented_bound(self, distribution, seed):
        rng = np.random.default_rng(seed)
        values = _random_samples(rng, distribution, size=2_000)
        histogram = Histogram()
        for value in values:
            histogram.observe(float(value))
        for q in (50.0, 95.0, 99.0):
            # The estimator targets the nearest-rank order statistic,
            # which is exactly numpy's inverted_cdf quantile.
            exact = float(np.percentile(values, q, method="inverted_cdf"))
            estimate = histogram.percentile(q)
            relative_error = abs(estimate - exact) / exact
            assert relative_error <= RELATIVE_ERROR_BOUND * (1 + 1e-9), (
                f"{distribution} seed={seed} p{q}: estimate {estimate:.6g} "
                f"vs exact {exact:.6g} (rel err {relative_error:.4f})"
            )

    def test_degenerate_stream_is_exact(self):
        histogram = Histogram()
        for _ in range(100):
            histogram.observe(0.0125)
        for q in (1.0, 50.0, 99.9):
            assert histogram.percentile(q) == pytest.approx(0.0125)

    def test_all_zero_stream_stays_finite(self):
        # FakeClock-driven tests observe literal zeros, which fall below
        # the lowest boundary; the min/max clamp keeps the estimate exact.
        histogram = Histogram()
        for _ in range(10):
            histogram.observe(0.0)
        assert histogram.percentile(50) == 0.0
        assert histogram.percentile(99) == 0.0

    def test_empty_histogram_is_nan(self):
        assert math.isnan(Histogram().percentile(50))
        assert math.isnan(Histogram().mean)

    def test_mean_and_extremes_are_exact(self):
        rng = np.random.default_rng(7)
        values = rng.uniform(1e-4, 1.0, size=500)
        histogram = Histogram()
        for value in values:
            histogram.observe(float(value))
        assert histogram.mean == pytest.approx(float(values.mean()))
        assert histogram.min == pytest.approx(float(values.min()))
        assert histogram.max == pytest.approx(float(values.max()))


class TestSnapshotMerge:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_merge_of_snapshots_equals_snapshot_of_merged(self, seed):
        rng = np.random.default_rng(seed)
        values = _random_samples(rng, "lognormal", size=1_500)
        chunks = np.array_split(values, 3)

        merged_stream = Histogram()
        for value in values:
            merged_stream.observe(float(value))
        expected = merged_stream.snapshot()

        parts = []
        for chunk in chunks:
            histogram = Histogram()
            for value in chunk:
                histogram.observe(float(value))
            parts.append(histogram.snapshot())
        combined = parts[0].merge(parts[1]).merge(parts[2])

        assert combined.counts == expected.counts  # exact ints
        assert combined.count == expected.count
        assert combined.min == expected.min
        assert combined.max == expected.max
        assert combined.sum == pytest.approx(expected.sum)
        for q in (50.0, 95.0, 99.0):
            assert combined.percentile(q) == pytest.approx(
                expected.percentile(q)
            )

    def test_merge_rejects_mismatched_boundaries(self):
        a = Histogram(log_boundaries(1e-6, 1.0)).snapshot()
        b = Histogram(log_boundaries(1e-6, 10.0)).snapshot()
        with pytest.raises(ValueError):
            a.merge(b)


class TestBoundaries:
    def test_log_boundaries_geometry(self):
        bounds = log_boundaries(1e-6, 64.0, per_decade=16)
        assert bounds == DEFAULT_LATENCY_BOUNDARIES
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        step = 10.0 ** (1.0 / 16.0)
        assert all(r == pytest.approx(step) for r in ratios)
        assert bounds[-1] >= 64.0

    def test_log_boundaries_validation(self):
        with pytest.raises(ValueError):
            log_boundaries(0.0, 1.0)
        with pytest.raises(ValueError):
            log_boundaries(1.0, 1.0)
        with pytest.raises(ValueError):
            log_boundaries(1e-6, 1.0, per_decade=0)

    def test_histogram_rejects_bad_boundaries(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0, 2.0))


class TestRegistry:
    def test_counter_gauge_histogram_exposition(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", help="A demo counter.").inc(3)
        registry.gauge("demo_gauge").set(2.5)
        hist = registry.histogram("demo_seconds", boundaries=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        hist.observe(9.0)

        text = registry.render_prometheus()
        assert "# HELP demo_total A demo counter." in text
        assert "# TYPE demo_total counter" in text
        assert "demo_total 3" in text
        assert "demo_gauge 2.5" in text
        # le-cumulative semantics: <=1.0 sees one, <=2.0 sees two, +Inf all.
        assert 'demo_seconds_bucket{le="1.0"} 1' in text
        assert 'demo_seconds_bucket{le="2.0"} 2' in text
        assert 'demo_seconds_bucket{le="+Inf"} 3' in text
        assert "demo_seconds_count 3" in text

        doc = registry.to_json()
        assert doc["demo_total"]["series"][0]["value"] == 3
        series = doc["demo_seconds"]["series"][0]
        assert series["counts"] == [1, 1, 1]
        assert series["count"] == 3

    def test_family_overflow_caps_cardinality(self):
        registry = MetricsRegistry()
        family = registry.family(
            "counter", "tagged_total", label_names=("tag",), max_series=3
        )
        for index in range(10):
            family.labels(f"tag-{index}").inc()
        assert family.series_count == 3
        assert family.overflowed
        overflow = family.get(OVERFLOW_LABEL)
        assert overflow.value == 7  # totals stay exact
        total = sum(child.value for _, child in family.items())
        assert total == 10

    def test_conflicting_registration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("metric_total")
        with pytest.raises(ValueError):
            registry.family("gauge", "metric_total")


class TestSharedPercentileHelper:
    def test_matches_numpy_linear_interpolation(self):
        rng = np.random.default_rng(11)
        latencies = rng.uniform(1e-4, 0.1, size=333)
        result = sample_percentiles_ms(latencies, percentiles=(50, 95, 99))
        for q in (50, 95, 99):
            expected = float(np.percentile(latencies, q) * 1e3)
            assert result[f"p{q}_ms"] == pytest.approx(expected)

    def test_empty_is_nan(self):
        result = sample_percentiles_ms([])
        assert set(result) == {"p50_ms", "p95_ms", "p99_ms"}
        assert all(math.isnan(value) for value in result.values())


def _drive_telemetry(telemetry, clock, rounds):
    """A fixed per-round recording mix over a bounded tag/shard universe."""
    for index in range(rounds):
        clock.advance(0.001)
        telemetry.record_queue_depth(index % 7)
        telemetry.record_batch(size=8, backend_queries=6)
        telemetry.record_loop_lag(0.0002)
        for shard in range(4):
            telemetry.record_shard(
                shard, latency_s=0.002, queries=6, candidates=5
            )
        telemetry.record_request(
            0.004, cache_hit=index % 3 == 0, tag=("a", "b")[index % 2]
        )
        if index % 11 == 0:
            telemetry.record_overload(tag="a")
        if index % 13 == 0:
            telemetry.record_deadline_miss(tag="b")


def _container_sizes(telemetry):
    """Every bounded container's size: must not grow with traffic."""
    sizes = {
        "tag_keys": len(telemetry._tag_keys),
        "shard_keys": len(telemetry._shard_keys),
        "families": len(telemetry.registry.families()),
    }
    for family in telemetry.registry.families():
        sizes[f"{family.name}.series"] = len(family._children)
        for key, child in family.items():
            if hasattr(child, "counts"):
                sizes[f"{family.name}{key}.buckets"] = len(child.counts)
    return sizes


class TestTelemetryBoundedMemory:
    def test_no_per_request_growth(self):
        clock = FakeClock()
        telemetry = GatewayTelemetry(clock=clock, thread_safe=False)
        _drive_telemetry(telemetry, clock, rounds=200)
        before = _container_sizes(telemetry)
        requests_before = telemetry.requests
        _drive_telemetry(telemetry, clock, rounds=1_000)
        after = _container_sizes(telemetry)
        assert telemetry.requests == requests_before + 1_000
        # 5x the traffic, identical container sizes: memory is
        # O(buckets + label universe), independent of request count.
        assert after == before
        # The pre-histogram implementation kept raw per-request lists;
        # their absence is the regression this test guards.
        assert not hasattr(telemetry, "latencies_s")
        assert not hasattr(telemetry, "latencies")

    def test_tag_overflow_row_bounds_cardinality(self):
        clock = FakeClock()
        telemetry = GatewayTelemetry(
            clock=clock, thread_safe=False, max_tags=2
        )
        for index in range(40):
            clock.advance(0.001)
            telemetry.record_request(
                0.002, cache_hit=False, tag=f"bucket-{index % 8}"
            )
        rows = {row["bucket"]: row for row in telemetry.bucket_rows()}
        assert set(rows) == {"bucket-0", "bucket-1", OVERFLOW_LABEL}
        assert sum(row["requests"] for row in rows.values()) == 40
        assert rows[OVERFLOW_LABEL]["requests"] == 30
        # The interner remembers every tag string it admitted or spilled,
        # but the metric families stay capped.
        assert telemetry._tag_latency.series_count == 2

    def test_shard_overflow_row_bounds_cardinality(self):
        clock = FakeClock()
        telemetry = GatewayTelemetry(
            clock=clock, thread_safe=False, max_shards=2
        )
        for shard in range(6):
            telemetry.record_shard(
                shard, latency_s=0.001, queries=4, candidates=3
            )
        rows = {row["shard"]: row for row in telemetry.shard_rows()}
        assert set(rows) == {0.0, 1.0, float(OVERFLOW_SHARD)}
        assert sum(row["queries"] for row in rows.values()) == 24
        assert rows[float(OVERFLOW_SHARD)]["batches"] == 4


class TestTelemetryExportRoundTrip:
    def _recorded_telemetry(self):
        clock = FakeClock()
        telemetry = GatewayTelemetry(clock=clock, thread_safe=False)
        rng = np.random.default_rng(5)
        for latency in rng.lognormal(mean=-6.0, sigma=1.0, size=400):
            clock.advance(0.0005)
            telemetry.record_request(float(latency), cache_hit=False)
        telemetry.record_batch(size=16, backend_queries=12)
        telemetry.record_overload()
        return telemetry

    def test_json_export_reconstructs_summary_percentiles(self):
        telemetry = self._recorded_telemetry()
        summary = telemetry.summary()
        doc = telemetry.export_json()
        assert doc["summary"]["requests"] == summary["requests"]
        assert doc["summary"]["p99_ms"] == summary["p99_ms"]
        assert doc["summary"]["recall_at_k"] is None  # NaN -> JSON null

        series = doc["metrics"]["gateway_request_latency_seconds"]["series"][0]
        rebuilt = HistogramSnapshot(
            boundaries=tuple(series["boundaries"]),
            counts=tuple(series["counts"]),
            count=series["count"],
            sum=series["sum"],
            min=series["min"],
            max=series["max"],
        )
        # A scraper holding only the raw JSON buckets recomputes the very
        # same quantiles summary() reports.
        for q, key in ((50, "p50_ms"), (95, "p95_ms"), (99, "p99_ms")):
            assert rebuilt.percentile(q) * 1e3 == pytest.approx(summary[key])
        assert rebuilt.count == summary["requests"]

    def test_prometheus_export_matches_summary_totals(self):
        telemetry = self._recorded_telemetry()
        summary = telemetry.summary()
        values = {}
        for line in telemetry.export_prometheus().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            values[name] = float(value)
        assert values["gateway_request_latency_seconds_count"] == (
            summary["requests"]
        )
        assert values["gateway_backend_queries_total"] == (
            summary["backend_queries"]
        )
        assert values["gateway_overload_rejections_total"] == (
            summary["overload_rejections"]
        )
        assert values['gateway_request_latency_seconds_bucket{le="+Inf"}'] == (
            summary["requests"]
        )
