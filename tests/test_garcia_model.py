"""Tests for the full GARCIA model: config, losses, ablations and inference."""

import numpy as np
import pytest

from repro.data.loaders import BatchLoader, interactions_to_arrays
from repro.models.garcia.config import GarciaConfig
from repro.models.garcia.model import GARCIA, build_garcia


@pytest.fixture(scope="module")
def garcia_model(tiny_scenario):
    config = GarciaConfig(embedding_dim=8, num_gnn_layers=2, intention_levels=3, seed=0)
    return build_garcia(
        tiny_scenario.dataset, tiny_scenario.graph, tiny_scenario.forest,
        tiny_scenario.head_tail, config,
    )


@pytest.fixture(scope="module")
def small_batch(tiny_scenario):
    return interactions_to_arrays(tiny_scenario.splits.train[:64])


class TestGarciaConfig:
    def test_defaults_match_paper(self):
        config = GarciaConfig()
        assert config.embedding_dim == 64
        assert config.num_gnn_layers == 2
        assert config.intention_levels == 5
        assert config.alpha == pytest.approx(0.1)
        assert config.beta == pytest.approx(0.01)
        assert config.temperature == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            GarciaConfig(embedding_dim=0)
        with pytest.raises(ValueError):
            GarciaConfig(intention_levels=6)
        with pytest.raises(ValueError):
            GarciaConfig(temperature=0.0)
        with pytest.raises(ValueError):
            GarciaConfig(alpha=-0.1)

    def test_without_helper(self):
        config = GarciaConfig()
        assert not config.without("ig").use_igcl
        assert not config.without("se").use_secl
        disabled = config.without("all")
        assert not (disabled.use_ktcl or disabled.use_secl or disabled.use_igcl)
        with pytest.raises(ValueError):
            config.without("bogus")

    def test_variant_names(self):
        config = GarciaConfig()
        assert config.variant_name() == "GARCIA"
        assert config.without("all").variant_name() == "GARCIA w.o. ALL"
        assert config.without("ig", "se").variant_name() == "GARCIA w.o. IG&SE"
        assert config.shared().variant_name() == "GARCIA-Share"

    def test_without_is_non_destructive(self):
        config = GarciaConfig()
        config.without("ig")
        assert config.use_igcl


class TestGarciaForward:
    def test_pretrain_loss_is_finite_and_differentiable(self, garcia_model, small_batch):
        loss = garcia_model.pretrain_loss(small_batch)
        assert np.isfinite(loss.item())
        assert loss.requires_grad
        loss.backward()
        assert any(parameter.grad is not None for parameter in garcia_model.parameters())

    def test_finetune_loss_positive_and_differentiable(self, garcia_model, small_batch):
        garcia_model.zero_grad()
        loss = garcia_model.finetune_loss(small_batch)
        assert loss.item() > 0
        loss.backward()
        assert garcia_model.click_head.layer1.weight.grad is not None

    def test_training_loss_is_finetune_loss(self, garcia_model, small_batch):
        assert garcia_model.training_loss(small_batch).item() == pytest.approx(
            garcia_model.finetune_loss(small_batch).item()
        )

    def test_predict_shapes_and_probability_range(self, garcia_model, small_batch):
        predictions = garcia_model.predict(small_batch.query_ids, small_batch.service_ids)
        assert predictions.shape == (len(small_batch),)
        assert np.all((predictions > 0) & (predictions < 1))

    def test_embeddings_cover_all_entities(self, garcia_model, tiny_scenario):
        assert garcia_model.query_embeddings().shape[0] == tiny_scenario.dataset.num_queries
        assert garcia_model.service_embeddings().shape[0] == tiny_scenario.dataset.num_services

    def test_intention_inputs_validated(self, tiny_scenario):
        config = GarciaConfig(embedding_dim=8)
        with pytest.raises(ValueError):
            GARCIA(
                graph=tiny_scenario.graph,
                forest=tiny_scenario.forest,
                query_intentions=[0],  # wrong length
                service_intentions=[s.intention_id for s in tiny_scenario.dataset.services],
                anchor_map={},
                config=config,
            )


class TestAblationVariants:
    def _build(self, tiny_scenario, config):
        return build_garcia(
            tiny_scenario.dataset, tiny_scenario.graph, tiny_scenario.forest,
            tiny_scenario.head_tail, config,
        )

    def test_without_all_pretrain_loss_is_zero_constant(self, tiny_scenario, small_batch):
        config = GarciaConfig(embedding_dim=8, intention_levels=2).without("all")
        model = self._build(tiny_scenario, config)
        loss = model.pretrain_loss(small_batch)
        assert loss.item() == pytest.approx(0.0)
        assert not loss.requires_grad

    def test_alpha_zero_matches_disabling_secl(self, tiny_scenario, small_batch):
        base = GarciaConfig(embedding_dim=8, intention_levels=2, seed=3)
        with_alpha_zero = self._build(tiny_scenario, base.__class__(**{**base.__dict__, "alpha": 0.0}))
        without_secl = self._build(tiny_scenario, base.without("se"))
        assert with_alpha_zero.pretrain_loss(small_batch).item() == pytest.approx(
            without_secl.pretrain_loss(small_batch).item(), rel=1e-6
        )

    def test_share_encoder_has_fewer_parameters(self, tiny_scenario):
        adaptive = self._build(tiny_scenario, GarciaConfig(embedding_dim=8))
        shared = self._build(tiny_scenario, GarciaConfig(embedding_dim=8, share_encoder=True))
        assert shared.num_parameters() < adaptive.num_parameters()

    def test_share_encoder_uses_same_object(self, tiny_scenario):
        shared = self._build(tiny_scenario, GarciaConfig(embedding_dim=8, share_encoder=True))
        assert shared.head_encoder is shared.tail_encoder

    def test_disabling_granularity_changes_pretrain_loss(self, tiny_scenario, small_batch):
        full = self._build(tiny_scenario, GarciaConfig(embedding_dim=8, seed=4))
        no_ktcl = self._build(tiny_scenario, GarciaConfig(embedding_dim=8, seed=4).without("ktcl"))
        assert full.pretrain_loss(small_batch).item() != pytest.approx(
            no_ktcl.pretrain_loss(small_batch).item()
        )


class TestCacheInvalidation:
    def test_predictions_change_after_training_step(self, tiny_scenario):
        from repro.nn import Adam

        config = GarciaConfig(embedding_dim=8, intention_levels=2, seed=9)
        model = build_garcia(
            tiny_scenario.dataset, tiny_scenario.graph, tiny_scenario.forest,
            tiny_scenario.head_tail, config,
        )
        loader = BatchLoader(tiny_scenario.splits.train, batch_size=64, seed=0)
        batch = next(iter(loader))
        before = model.predict(batch.query_ids[:10], batch.service_ids[:10]).copy()
        optimizer = Adam(model.parameters(), lr=0.05)
        loss = model.finetune_loss(batch)
        loss.backward()
        optimizer.step()
        model.invalidate_cache()
        after = model.predict(batch.query_ids[:10], batch.service_ids[:10])
        assert not np.allclose(before, after)
