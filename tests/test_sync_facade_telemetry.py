"""Loop-front-end telemetry through the *sync* ``BatchScheduler`` facade.

PR 4 added queue-depth, overload, deadline-miss, cancellation and
event-loop-lag metrics to :class:`GatewayTelemetry`; the async suite covers
them on a live event loop, but the synchronous facade drives the very same
core through ``run_until_complete`` — these tests pin down that every one
of those ``summary()`` fields is populated on the sync path too (and that
``scheduler.stats()`` agrees with the telemetry).
"""

import time

import pytest

from repro.serving.gateway import (
    BatchScheduler,
    DeadlineExceededError,
    GatewayTelemetry,
    OverloadError,
    ServingGateway,
    VersionedEmbeddingStore,
    clustered_embeddings,
)


class FakeClock:
    """Manually advanced clock for deadline semantics without sleeping."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_facade(max_batch_size=8, max_wait_s=0.05, **kwargs):
    clock = FakeClock()
    telemetry = GatewayTelemetry(clock=clock)

    def executor(batch):
        return [pending.query_id * 10 for pending in batch]

    scheduler = BatchScheduler(
        executor,
        max_batch_size=max_batch_size,
        max_wait_s=max_wait_s,
        clock=clock,
        telemetry=telemetry,
        **kwargs,
    )
    return scheduler, telemetry, clock


class TestSyncFacadeTelemetry:
    def test_overload_rejection_populates_summary(self):
        scheduler, telemetry, _ = make_facade(max_queue=2, overload="reject")
        scheduler.submit(1, 5)
        scheduler.submit(2, 5)
        with pytest.raises(OverloadError):
            scheduler.submit(3, 5)
        summary = telemetry.summary()
        assert summary["overload_rejections"] == 1.0
        assert summary["queue_depth_max"] == 2.0
        scheduler.flush()
        scheduler.close()

    def test_sync_submit_rejects_even_under_wait_policy(self):
        # There is no loop to park a sync submitter on: the facade's
        # submit_nowait path always sheds, and the shed is observable.
        scheduler, telemetry, _ = make_facade(max_queue=1, overload="wait")
        scheduler.submit(1, 5)
        with pytest.raises(OverloadError):
            scheduler.submit(2, 5)
        assert telemetry.summary()["overload_rejections"] == 1.0
        scheduler.flush()
        scheduler.close()

    def test_queue_depth_mean_and_max_from_sync_submits(self):
        scheduler, telemetry, _ = make_facade()
        for query_id in range(3):
            scheduler.submit(query_id, 5)
        summary = telemetry.summary()
        assert summary["queue_depth_max"] == 3.0
        assert summary["queue_depth_mean"] == pytest.approx(2.0)  # (1+2+3)/3
        scheduler.flush()
        scheduler.close()

    def test_deadline_miss_counted_and_raised_via_poll(self):
        scheduler, telemetry, clock = make_facade(max_wait_s=0.01)
        expired = scheduler.submit(1, 5, deadline_s=0.05)
        alive = scheduler.submit(2, 5, deadline_s=10.0)
        clock.advance(0.1)
        scheduler.poll()
        with pytest.raises(DeadlineExceededError):
            expired.result(0)
        assert alive.result(0) == 20
        summary = telemetry.summary()
        assert summary["deadline_misses"] == 1.0
        assert scheduler.stats()["deadline_misses"] == 1.0
        scheduler.close()

    def test_cancellation_counted_and_slot_never_scored(self):
        scheduler, telemetry, _ = make_facade()
        doomed = scheduler.submit(1, 5)
        alive = scheduler.submit(2, 5)
        assert doomed.cancel()
        scheduler.flush()
        assert alive.result(0) == 20
        summary = telemetry.summary()
        assert summary["cancelled_requests"] == 1.0
        assert scheduler.stats()["cancelled_requests"] == 1.0
        scheduler.close()

    def test_background_drive_records_loop_lag(self):
        # The frozen FakeClock keeps the queued request below both dispatch
        # triggers, so the background drive task's deadline sleep fires over
        # and over — each timeout is one loop-lag sample.
        scheduler, telemetry, clock = make_facade(max_wait_s=0.005)
        scheduler.start()
        try:
            pending = scheduler.submit(1, 5)
            deadline = time.monotonic() + 5.0
            while telemetry.loop_lag_samples < 1 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert telemetry.loop_lag_samples >= 1
            assert telemetry.summary()["loop_lag_max_ms"] >= 0.0
            clock.advance(1.0)  # past max_wait: the drive task dispatches
            assert pending.result(timeout=5.0) == 10
        finally:
            scheduler.stop()
            scheduler.close()

    def test_stats_and_summary_agree_on_shed_counters(self):
        scheduler, telemetry, clock = make_facade(max_queue=2, overload="reject")
        scheduler.submit(1, 5, deadline_s=0.01)
        scheduler.submit(2, 5)
        with pytest.raises(OverloadError):
            scheduler.submit(3, 5)
        clock.advance(0.5)
        scheduler.flush()
        summary = telemetry.summary()
        stats = scheduler.stats()
        for key in ("overload_rejections", "deadline_misses", "cancelled_requests"):
            assert summary[key] == stats[key]
        assert summary["queue_depth_max"] == stats["max_queue_depth"]
        scheduler.close()


class TestSyncGatewayTelemetry:
    """The same fields end-to-end through the gateway's sync surface."""

    @pytest.fixture(scope="class")
    def embeddings(self):
        return clustered_embeddings(60, 300, 16, num_clusters=6, seed=9)

    def test_gateway_sync_path_reports_shed_and_depth(self, embeddings):
        queries, services = embeddings
        clock = FakeClock()
        store = VersionedEmbeddingStore(queries, services, clock=clock)
        gateway = ServingGateway(store, index="exact", top_k=5,
                                 max_batch_size=64, cache_capacity=0,
                                 max_queue=2, overload="reject", clock=clock)
        try:
            expired = gateway.submit(0, deadline_s=0.05)
            gateway.submit(1)
            with pytest.raises(OverloadError):
                gateway.submit(2)
            clock.advance(0.2)
            gateway.flush()
            with pytest.raises(DeadlineExceededError):
                expired.result(0)
            summary = gateway.summary()
            assert summary["overload_rejections"] == 1.0
            assert summary["deadline_misses"] == 1.0
            assert summary["queue_depth_max"] == 2.0
            assert summary["requests"] == 1.0  # only the live request scored
        finally:
            gateway.close()
