"""Tests for Module / Parameter containers and state handling."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import MLP, Linear, Module, Parameter, Sequential


class ToyModel(Module):
    def __init__(self):
        super().__init__()
        self.layer_a = Linear(3, 4, rng=np.random.default_rng(0))
        self.layer_b = Linear(4, 2, rng=np.random.default_rng(1))
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.layer_b(self.layer_a(x)) * self.scale


class TestParameterRegistration:
    def test_named_parameters_are_qualified(self):
        model = ToyModel()
        names = dict(model.named_parameters()).keys()
        assert "layer_a.weight" in names
        assert "layer_a.bias" in names
        assert "layer_b.weight" in names
        assert "scale" in names

    def test_parameters_flat_list_and_count(self):
        model = ToyModel()
        assert len(model.parameters()) == 5
        assert model.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2 + 1

    def test_parameter_always_requires_grad(self):
        assert Parameter(np.zeros(3)).requires_grad

    def test_register_module_for_list_held_children(self):
        class Holder(Module):
            def __init__(self):
                super().__init__()
                self.blocks = []
                for index in range(3):
                    block = Linear(2, 2)
                    self.register_module(f"block_{index}", block)
                    self.blocks.append(block)

        holder = Holder()
        assert len(holder.parameters()) == 6

    def test_zero_grad_clears_all(self):
        model = ToyModel()
        out = model(Tensor(np.ones((2, 3)))).sum()
        out.backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestTrainEvalMode:
    def test_train_eval_propagates_to_children(self):
        model = ToyModel()
        model.eval()
        assert not model.training
        assert not model.layer_a.training
        model.train()
        assert model.layer_b.training

    def test_sequential_propagation(self):
        seq = Sequential([Linear(2, 2), Linear(2, 2)])
        seq.eval()
        assert all(not layer.training for layer in seq)


class TestStateDict:
    def test_roundtrip(self):
        model = ToyModel()
        state = model.state_dict()
        clone = ToyModel()
        clone.load_state_dict(state)
        for (_, p1), (_, p2) in zip(model.named_parameters(), clone.named_parameters()):
            assert np.allclose(p1.data, p2.data)

    def test_state_dict_is_a_copy(self):
        model = ToyModel()
        state = model.state_dict()
        state["scale"][:] = 99.0
        assert not np.allclose(model.scale.data, 99.0)

    def test_strict_load_raises_on_missing_keys(self):
        model = ToyModel()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state, strict=True)

    def test_non_strict_load_ignores_missing_and_extra(self):
        model = ToyModel()
        state = {"scale": np.array([5.0]), "unknown.weight": np.zeros((2, 2))}
        model.load_state_dict(state, strict=False)
        assert model.scale.data == pytest.approx(np.array([5.0]))

    def test_shape_mismatch_raises(self):
        model = ToyModel()
        state = model.state_dict()
        state["scale"] = np.zeros(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_mlp_state_roundtrip_preserves_output(self, rng):
        mlp = MLP([4, 8, 2], rng=rng)
        x = Tensor(rng.normal(size=(5, 4)))
        before = mlp(x).data.copy()
        clone = MLP([4, 8, 2], rng=np.random.default_rng(999))
        clone.load_state_dict(mlp.state_dict())
        assert np.allclose(clone(x).data, before)


class TestForwardProtocol:
    def test_base_forward_raises(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_call_dispatches_to_forward(self, rng):
        model = ToyModel()
        output = model(Tensor(rng.normal(size=(7, 3))))
        assert output.shape == (7, 2)
