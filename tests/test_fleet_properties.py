"""Randomized property tests for the fleet tier (``repro.serving.fleet``).

Two contracts get the property treatment here:

* **Minimal disruption** — rendezvous hashing's defining property: when
  nodes leave, only the sessions *owned by the departed nodes* move (each
  to its rendezvous runner-up); when nodes join, the only sessions that
  move are the ones the new nodes win.  Checked at the pure hashing level
  and again through :class:`FleetRouter` under random ejection subsets.
* **At-most-once accounting** — retry-on-failover must never double-count:
  whatever chaos does mid-stream (kills, stalls, slow-rolls), every
  admitted session is answered at exactly one replica and appears exactly
  once in the fleet telemetry, and ``answered + shed + missed`` equals the
  offered total (no request lost, none counted twice).

Both are driven with seeded randomized workloads rather than hand-picked
examples — node counts, ejection subsets, kill instants and storm shapes
all vary by seed.
"""

import asyncio

import numpy as np
import pytest

from repro.serving.fleet import (
    ChaosController,
    ChaosEvent,
    FleetRouter,
    HealthPolicy,
    rendezvous_choose,
    rendezvous_rank,
)
from repro.serving.gateway import (
    DeadlineExceededError,
    OverloadError,
    ServingGateway,
    VersionedEmbeddingStore,
)

DIM = 8
NUM_QUERIES = 40
NUM_SERVICES = 30


def make_fleet(num_replicas: int, policy=None, max_failovers: int = 1,
               seed: int = 0, **gateway_kwargs) -> FleetRouter:
    rng = np.random.default_rng(seed)
    store = VersionedEmbeddingStore(
        rng.normal(size=(NUM_QUERIES, DIM)),
        rng.normal(size=(NUM_SERVICES, DIM)),
    )
    gateway_kwargs.setdefault("index", "exact")
    gateway_kwargs.setdefault("top_k", 5)
    gateway_kwargs.setdefault("max_batch_size", 8)
    gateway_kwargs.setdefault("max_wait_s", 0.001)
    gateway_kwargs.setdefault("cache_capacity", 0)
    gateways = {
        f"replica-{i}": ServingGateway(store, **gateway_kwargs)
        for i in range(num_replicas)
    }
    return FleetRouter(gateways, policy=policy, max_failovers=max_failovers)


async def drive(fleet, session_ids, deadline_s=None, kill_at=None,
                victim=None):
    """Drive sessions; optionally kill ``victim`` before request ``kill_at``.

    Returns ``(answered, shed, missed)`` — every session lands in exactly
    one bucket, which is the ledger the properties check against.
    """
    answered = shed = missed = 0
    for index, session_id in enumerate(session_ids):
        if kill_at is not None and index == kill_at:
            fleet.replica(victim).kill()
        try:
            await fleet.search_async(int(session_id) % NUM_QUERIES,
                                     deadline_s=deadline_s,
                                     session_id=int(session_id))
        except OverloadError:
            shed += 1
        except DeadlineExceededError:
            missed += 1
        else:
            answered += 1
    return answered, shed, missed


# --------------------------------------------------------------------- #
# Minimal disruption: pure hashing level
# --------------------------------------------------------------------- #
class TestRendezvousMinimalDisruption:
    @pytest.mark.parametrize("seed", range(10))
    def test_removal_moves_only_orphaned_keys(self, seed):
        rng = np.random.default_rng(seed)
        num_nodes = int(rng.integers(3, 9))
        nodes = [f"node-{i}" for i in range(num_nodes)]
        removed = set(rng.choice(nodes, size=int(rng.integers(1, num_nodes - 1)),
                                 replace=False))
        survivors = [node for node in nodes if node not in removed]
        keys = rng.integers(0, 2**62, size=400)
        for key in keys:
            before = rendezvous_choose(int(key), nodes)
            after = rendezvous_choose(int(key), survivors)
            if before in removed:
                # Orphans land on their rendezvous runner-up among the
                # survivors — the next node in the full-set preference order.
                order = rendezvous_rank(int(key), nodes)
                expected = next(n for n in order if n not in removed)
                assert after == expected
            else:
                assert after == before  # everyone else stays put

    @pytest.mark.parametrize("seed", range(10))
    def test_addition_only_pulls_keys_to_new_nodes(self, seed):
        rng = np.random.default_rng(seed)
        nodes = [f"node-{i}" for i in range(int(rng.integers(2, 7)))]
        grown = nodes + [f"new-{i}" for i in range(int(rng.integers(1, 3)))]
        keys = rng.integers(0, 2**62, size=400)
        moved = 0
        for key in keys:
            before = rendezvous_choose(int(key), nodes)
            after = rendezvous_choose(int(key), grown)
            if after != before:
                assert after.startswith("new-")  # only new nodes steal keys
                moved += 1
        # Expected share of moved keys is new/(old+new); allow generous slack.
        expected = (len(grown) - len(nodes)) / len(grown)
        assert moved / len(keys) < expected * 2.0 + 0.05


# --------------------------------------------------------------------- #
# Minimal disruption: through the router under ejections
# --------------------------------------------------------------------- #
class TestRouterEjectionDisruption:
    @pytest.mark.parametrize("seed", range(6))
    def test_only_ejected_replicas_sessions_move(self, seed):
        rng = np.random.default_rng(seed)
        num_replicas = int(rng.integers(3, 6))
        fleet = make_fleet(num_replicas, seed=seed)
        try:
            sessions = [int(s) for s in rng.integers(0, 2**62, size=120)]
            before = {s: fleet.route(s)[0].name for s in sessions}
            names = [replica.name for replica in fleet.replicas]
            ejected = set(rng.choice(
                names, size=int(rng.integers(1, num_replicas - 1)),
                replace=False))
            for name in ejected:
                fleet.replica(name).health.mark_dead()
            for session in sessions:
                after, policy = fleet.route(session)
                assert policy == "rendezvous"
                if before[session] in ejected:
                    order = [r.name for r in fleet.rank(session)]
                    expected = next(n for n in order if n not in ejected)
                    assert after.name == expected
                else:
                    assert after.name == before[session]
        finally:
            fleet.close()


# --------------------------------------------------------------------- #
# At-most-once accounting under chaos
# --------------------------------------------------------------------- #
class TestFailoverNeverDoubleCounts:
    @pytest.mark.parametrize("seed", range(6))
    def test_midstream_kill_counts_every_session_once(self, seed):
        rng = np.random.default_rng(seed)
        # Randomize the probe cadence so both the probe-driven ejection
        # path and the passive in-request failover path get exercised.
        probe_interval = float(rng.choice([0.0, 1000.0]))
        policy = HealthPolicy(probe_interval_s=probe_interval)
        fleet = make_fleet(3, policy=policy, seed=seed)
        try:
            total = 150
            sessions = rng.integers(0, 2**62, size=total)
            victim = f"replica-{int(rng.integers(0, 3))}"
            kill_at = int(rng.integers(10, total - 10))
            answered, shed, missed = asyncio.run(drive(
                fleet, sessions, deadline_s=5.0,
                kill_at=kill_at, victim=victim))
            assert answered + shed + missed == total  # nothing lost
            summary = fleet.summary()
            # Fleet telemetry: each answered session recorded exactly once
            # even when its first attempt died and it was retried.
            assert summary["requests"] == float(answered)
            assert summary["overload_rejections"] == float(shed)
            assert summary["deadline_misses"] == float(missed)
            # Backend accounting: each answered session executed on exactly
            # one replica — retries never double-execute.
            executed = sum(replica.gateway.health().requests
                           for replica in fleet.replicas)
            assert executed == answered
            routed = sum(row["routed"] for row in fleet.replica_rows())
            assert routed == answered
        finally:
            fleet.close()

    @pytest.mark.parametrize("seed", range(4))
    def test_seeded_storm_conserves_the_request_ledger(self, seed):
        rng = np.random.default_rng(seed)
        fleet = make_fleet(3, policy=HealthPolicy(probe_interval_s=0.01),
                           seed=seed, max_queue=64, overload="reject")
        try:
            victims = [f"replica-{int(v)}" for v in rng.integers(0, 3, size=3)]
            events = [
                ChaosEvent(at_s=0.02, action="stall", replica=victims[0],
                           duration_s=0.05),
                ChaosEvent(at_s=0.04, action="slow", replica=victims[1],
                           factor=3.0),
                ChaosEvent(at_s=0.06, action="kill", replica=victims[2]),
            ]
            ChaosController(fleet, events)
            fleet.chaos.arm()
            total = 200
            sessions = rng.integers(0, 2**62, size=total)
            answered, shed, missed = asyncio.run(drive(
                fleet, sessions, deadline_s=0.5))
            assert answered + shed + missed == total
            summary = fleet.summary()
            assert summary["requests"] == float(answered)
            assert summary["overload_rejections"] == float(shed)
            assert summary["deadline_misses"] == float(missed)
            executed = sum(replica.gateway.health().requests
                           for replica in fleet.replicas)
            assert executed == answered
        finally:
            fleet.close()
