"""Durable chunked snapshots: format round-trips, crash safety, warm start.

The crash-safety contract under test: a truncated chunk, a flipped
checksum byte, a manifest pointing at a missing chunk, and a kill between
chunk write and manifest-pointer flip must all fail loudly with a typed
error — and the directory must still recover to the last good version.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.serving.fleet.replica import FleetReplica
from repro.serving.gateway.gateway import ServingGateway, deploy_gateway
from repro.serving.gateway.store import VersionedEmbeddingStore
from repro.serving.quant.ivfpq import IVFPQIndex
from repro.serving.sharded import ShardedGateway
from repro.serving.snapshot import (
    SnapshotError,
    SnapshotIntegrityError,
    SnapshotNotFoundError,
    content_id,
    open_chunk,
    open_snapshot,
    prune,
    read_pointer,
    write_chunk,
    write_snapshot,
)
from repro.serving.snapshot.format import HEADER_SIZE, ChunkRef
from repro.serving.snapshot.manifest import manifest_rel

DIM = 16


@pytest.fixture()
def embeddings():
    rng = np.random.default_rng(11)
    queries = rng.normal(size=(60, DIM)).astype(np.float32)
    services = rng.normal(size=(400, DIM)).astype(np.float32)
    return queries, services


@pytest.fixture()
def durable_store(tmp_path, embeddings):
    queries, services = embeddings
    store = VersionedEmbeddingStore(
        queries, services, num_shards=4,
        quantization=("int8", "pq"),
        quantization_params={"pq": {"num_subspaces": 4}},
        durable_dir=str(tmp_path),
    )
    return store, tmp_path


def _corrupt_payload_byte(directory: Path) -> Path:
    """Flip one payload byte in every chunk file under ``directory``."""
    chunks = sorted((directory / "chunks").glob("*.chunk"))
    assert chunks, "no chunks on disk"
    for chunk in chunks:
        raw = bytearray(chunk.read_bytes())
        raw[HEADER_SIZE + 3] ^= 0xFF
        chunk.write_bytes(raw)
    return chunks[0]


# --------------------------------------------------------------------- #
# Chunk container format
# --------------------------------------------------------------------- #
class TestChunkFormat:
    def test_round_trip_is_bit_identical_and_read_only(self, tmp_path):
        array = np.arange(48, dtype=np.float32).reshape(12, 4)
        ref, written = write_chunk(tmp_path, array)
        assert written
        view = open_chunk(tmp_path, ref)
        assert np.array_equal(view, array)
        assert view.dtype == array.dtype
        assert not view.flags.writeable  # mmapped ACCESS_READ, zero copy
        with pytest.raises((ValueError, RuntimeError)):
            view[0, 0] = 1.0

    def test_content_addressing_dedups_identical_payloads(self, tmp_path):
        array = np.ones((8, 3), dtype=np.int8)
        ref1, written1 = write_chunk(tmp_path, array)
        ref2, written2 = write_chunk(tmp_path, array.copy())
        assert written1 and not written2
        assert ref1 == ref2
        assert len(list((tmp_path / "chunks").glob("*.chunk"))) == 1

    def test_content_id_depends_on_shape_and_dtype(self):
        data = np.arange(12, dtype=np.float32)
        assert content_id(data) != content_id(data.reshape(3, 4))
        assert content_id(data) != content_id(data.astype(np.float64))

    def test_truncated_chunk_raises_typed_error(self, tmp_path):
        ref, _ = write_chunk(tmp_path, np.arange(100, dtype=np.float64))
        path = tmp_path / "chunks" / f"{ref.chunk_id}.chunk"
        path.write_bytes(path.read_bytes()[:-32])
        with pytest.raises(SnapshotIntegrityError, match="truncated"):
            open_chunk(tmp_path, ref)

    def test_truncated_mid_header_raises_typed_error(self, tmp_path):
        ref, _ = write_chunk(tmp_path, np.arange(10, dtype=np.int32))
        path = tmp_path / "chunks" / f"{ref.chunk_id}.chunk"
        path.write_bytes(path.read_bytes()[: HEADER_SIZE // 2])
        with pytest.raises(SnapshotIntegrityError, match="header"):
            open_chunk(tmp_path, ref)

    def test_flipped_payload_byte_fails_checksum(self, tmp_path):
        ref, _ = write_chunk(tmp_path, np.arange(100, dtype=np.float32))
        path = tmp_path / "chunks" / f"{ref.chunk_id}.chunk"
        raw = bytearray(path.read_bytes())
        raw[HEADER_SIZE + 5] ^= 0x01
        path.write_bytes(raw)
        with pytest.raises(SnapshotIntegrityError, match="checksum"):
            open_chunk(tmp_path, ref)

    def test_flipped_header_byte_fails_header_crc(self, tmp_path):
        ref, _ = write_chunk(tmp_path, np.arange(100, dtype=np.float32))
        path = tmp_path / "chunks" / f"{ref.chunk_id}.chunk"
        raw = bytearray(path.read_bytes())
        raw[20] ^= 0x04  # inside the nbytes field
        path.write_bytes(raw)
        with pytest.raises(SnapshotIntegrityError):
            open_chunk(tmp_path, ref)

    def test_missing_chunk_raises_typed_error(self, tmp_path):
        ref = ChunkRef(chunk_id="ab" * 16, dtype="<f4", shape=(2, 2),
                       nbytes=16, crc32=0)
        with pytest.raises(SnapshotIntegrityError, match="missing"):
            open_chunk(tmp_path, ref)


# --------------------------------------------------------------------- #
# Snapshot round-trip + delta publish
# --------------------------------------------------------------------- #
class TestSnapshotRoundTrip:
    def test_restore_is_bit_identical(self, durable_store):
        store, root = durable_store
        snap = store.snapshot()
        restored = VersionedEmbeddingStore.restore(str(root))
        back = restored.snapshot()
        assert back.version == snap.version
        assert back.shard_bounds == snap.shard_bounds
        assert np.array_equal(back.queries, snap.queries)
        assert np.array_equal(back.services, snap.services)
        assert np.array_equal(back.quantized["int8"].codes,
                              snap.quantized["int8"].codes)
        assert np.array_equal(back.quantized["int8"].scales,
                              snap.quantized["int8"].scales)
        assert np.array_equal(back.quantized["pq"].codes,
                              snap.quantized["pq"].codes)
        assert np.array_equal(back.quantized["pq"].quantizer.codebooks_,
                              snap.quantized["pq"].quantizer.codebooks_)
        assert restored.quantization == store.quantization
        assert restored.quantization_params == store.quantization_params
        assert restored.num_shards == store.num_shards

    def test_restored_arrays_are_zero_copy_read_only(self, durable_store):
        _, root = durable_store
        back = VersionedEmbeddingStore.restore(str(root)).snapshot()
        assert not back.services.flags.writeable
        assert not back.queries.flags.writeable
        # a single-chunk array is a direct view over the chunk mmap
        assert back.services.base is not None

    def test_delta_publish_writes_only_changed_chunks(self, durable_store,
                                                      embeddings):
        store, root = durable_store
        queries, services = embeddings
        report = store._persist(store.snapshot(), str(root), flip=False)[1]
        assert report.chunks_written == 0  # everything already on disk
        # changing only the queries leaves every service-side chunk shared
        store.publish(queries + 0.5, services)
        snap = store.snapshot()
        report = store._persist(snap, str(root), flip=False)[1]
        assert report.chunks_written == 0
        manifest = open_snapshot(root).manifest
        v0 = open_snapshot(root, version=0).manifest
        for section in ("fp", "int8", "pq"):
            for name, refs in manifest["sections"][section]["arrays"].items():
                if (section, name) in (("fp", "queries"),
                                       ("int8", "query_scale")):
                    # The query table changed, and the frozen integer-path
                    # query scale is derived from it.
                    assert refs != v0["sections"][section]["arrays"][name]
                else:
                    assert refs == v0["sections"][section]["arrays"][name]

    def test_write_snapshot_reports_delta_counts(self, tmp_path, embeddings):
        queries, services = embeddings
        store = VersionedEmbeddingStore(queries, services, num_shards=2)
        first = write_snapshot(store.snapshot(), tmp_path)
        assert first.chunks_written == 2 and first.chunks_shared == 0
        again = write_snapshot(store.snapshot(), tmp_path)
        assert again.chunks_written == 0 and again.chunks_shared == 2

    def test_row_chunked_arrays_reassemble_and_hydrate_ranges(self, tmp_path,
                                                              embeddings):
        queries, services = embeddings
        store = VersionedEmbeddingStore(queries, services, num_shards=4,
                                        quantization=("int8",))
        snap = store.snapshot()
        write_snapshot(snap, tmp_path, rows_per_chunk=96)
        durable = open_snapshot(tmp_path)
        back = durable.to_snapshot(published_at=0.0)
        assert np.array_equal(back.services, snap.services)
        lo, hi = snap.shard_bounds[1], snap.shard_bounds[2]
        rows, int8 = durable.shard_tables(lo, hi)
        assert np.array_equal(rows, snap.services[lo:hi])
        assert np.array_equal(int8.codes, snap.quantized["int8"].codes[lo:hi])
        assert np.array_equal(int8.scales, snap.quantized["int8"].scales)

    def test_open_missing_directory_raises_not_found(self, tmp_path):
        with pytest.raises(SnapshotNotFoundError):
            open_snapshot(tmp_path / "nowhere")

    def test_prune_keeps_live_versions(self, durable_store, embeddings):
        store, root = durable_store
        queries, services = embeddings
        for step in range(1, 4):
            store.publish(queries + step, services)
        removed = prune(root, keep_versions=2)
        assert removed["manifests"] >= 1
        live = open_snapshot(root)
        assert live.version == 3
        assert np.array_equal(live.to_snapshot(published_at=0.0).queries,
                              store.snapshot().queries)
        with pytest.raises(SnapshotNotFoundError):
            open_snapshot(root, version=0)


# --------------------------------------------------------------------- #
# Crash safety: every failure recovers to the last good version
# --------------------------------------------------------------------- #
class TestCrashSafety:
    def test_kill_between_chunk_write_and_pointer_flip(self, durable_store,
                                                       embeddings):
        store, root = durable_store
        queries, services = embeddings
        good = store.snapshot()
        # Simulate the crash window: v1's chunks and manifest are fully
        # durable but the process dies before the MANIFEST pointer flips.
        doomed = store._make_snapshot(queries + 1.0, services, version=1)
        write_snapshot(doomed, root, flip=False)
        assert (root / manifest_rel(1)).exists()
        assert read_pointer(root) == manifest_rel(0)
        recovered = VersionedEmbeddingStore.restore(str(root))
        assert recovered.version == good.version == 0
        assert np.array_equal(recovered.snapshot().queries, good.queries)

    def test_aborted_publish_keeps_pointer_and_deletes_orphan_manifest(
            self, durable_store, embeddings):
        store, root = durable_store
        queries, services = embeddings

        class FailingListener:
            def prepare(self, snapshot):
                raise RuntimeError("prepare failed")

            def activate(self, snapshot):  # pragma: no cover
                pass

            def retire(self, version):
                pass

        listener = FailingListener()
        store._listeners.append(listener)  # subscribe() would prepare now
        with pytest.raises(RuntimeError, match="prepare failed"):
            store.publish(queries + 2.0, services)
        store._listeners.remove(listener)
        assert store.version == 0
        assert read_pointer(root) == manifest_rel(0)
        assert not (root / manifest_rel(1)).exists()
        # the store still publishes fine afterwards
        assert store.publish(queries + 3.0, services) == 1
        assert read_pointer(root) == manifest_rel(1)

    def test_truncated_chunk_recovers_to_last_good_version(
            self, durable_store, embeddings):
        store, root = durable_store
        queries, services = embeddings
        store.publish(queries + 1.0, services)
        # truncate a chunk that only v1 references (its new query table)
        v1_refs = open_snapshot(root).manifest["sections"]["fp"]["arrays"]["queries"]
        v0_refs = open_snapshot(root, version=0).manifest["sections"]["fp"]["arrays"]["queries"]
        assert v1_refs != v0_refs
        path = root / "chunks" / f"{v1_refs[0]['chunk']}.chunk"
        path.write_bytes(path.read_bytes()[: HEADER_SIZE + 8])
        with pytest.raises(SnapshotIntegrityError, match="truncated"):
            VersionedEmbeddingStore.restore(str(root))
        recovered = VersionedEmbeddingStore.restore(str(root), version=0)
        assert recovered.version == 0
        assert np.array_equal(recovered.snapshot().queries,
                              queries.astype(np.float32))

    def test_flipped_checksum_byte_raises_typed_error(self, durable_store):
        _, root = durable_store
        _corrupt_payload_byte(root)
        with pytest.raises(SnapshotIntegrityError, match="checksum"):
            VersionedEmbeddingStore.restore(str(root))

    def test_manifest_pointing_at_missing_chunk(self, durable_store):
        _, root = durable_store
        for chunk in (root / "chunks").glob("*.chunk"):
            chunk.unlink()
        with pytest.raises(SnapshotIntegrityError, match="missing"):
            VersionedEmbeddingStore.restore(str(root))

    def test_torn_manifest_raises_typed_error(self, durable_store):
        _, root = durable_store
        path = root / manifest_rel(0)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises((SnapshotIntegrityError, SnapshotNotFoundError)):
            open_snapshot(root)

    def test_empty_pointer_raises_typed_error(self, durable_store):
        _, root = durable_store
        (root / "MANIFEST").write_text("")
        with pytest.raises(SnapshotIntegrityError, match="pointer"):
            open_snapshot(root)


# --------------------------------------------------------------------- #
# End-to-end warm start: gateway, process pool, fleet replica
# --------------------------------------------------------------------- #
class TestWarmStartServing:
    def test_warm_started_gateway_serves_bit_identical_results(
            self, durable_store):
        store, root = durable_store
        cold = ServingGateway(store, index="int8", cache_capacity=0)
        warm = deploy_gateway(warm_start=str(root), index="int8",
                              cache_capacity=0)
        try:
            assert isinstance(warm, ShardedGateway)  # manifest says 4 shards
            for query_id in range(10):
                assert cold.rank(query_id, 8) == warm.rank(query_id, 8)
        finally:
            cold.close()
            warm.close()

    def test_process_pool_hydrates_shards_from_manifest(self, durable_store):
        store, root = durable_store
        disk = ShardedGateway(store, index="int8", workers="process",
                              cache_capacity=0)
        ref_store = VersionedEmbeddingStore.restore(str(root))
        ref = ShardedGateway(ref_store, index="int8", workers="serial",
                             cache_capacity=0)
        try:
            wanted = list(range(12))
            assert disk.rank_batch(wanted, k=8) == ref.rank_batch(wanted, k=8)
        finally:
            disk.close()
            ref.close()

    def test_replica_revive_catches_up_from_manifest(self, durable_store,
                                                     embeddings):
        store, root = durable_store
        queries, services = embeddings
        stale_store = VersionedEmbeddingStore.restore(str(root))
        replica = FleetReplica(
            "r0", ServingGateway(stale_store, index="exact", cache_capacity=0))
        try:
            replica.kill()
            store.publish(queries + 1.0, services)  # publish while dead
            assert replica.gateway.store.version == 0
            assert replica.revive(warm_start=str(root)) == 1
            assert not replica.faulted
            assert np.array_equal(replica.gateway.store.snapshot().queries,
                                  store.snapshot().queries)
        finally:
            replica.close()

    def test_revive_without_warm_start_only_clears_faults(self, durable_store):
        store, root = durable_store
        replica = FleetReplica(
            "r1", ServingGateway(store, index="exact", cache_capacity=0))
        try:
            replica.kill()
            assert replica.revive() == store.version
            assert not replica.faulted
        finally:
            replica.close()

    def test_corrupt_snapshot_falls_back_to_model_rebuild(self, durable_store,
                                                          embeddings):
        _, root = durable_store
        queries, services = embeddings
        _corrupt_payload_byte(root)

        class FakeModel:
            def query_embeddings(self):
                return queries

            def service_embeddings(self):
                return services

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            gateway = deploy_gateway(FakeModel(), warm_start=str(root),
                                     index="exact", cache_capacity=0)
        try:
            assert any("warm start" in str(w.message) for w in caught)
            assert gateway.rank(0, 5)
        finally:
            gateway.close()

    def test_corrupt_snapshot_without_model_raises(self, durable_store):
        _, root = durable_store
        _corrupt_payload_byte(root)
        with pytest.raises(SnapshotError):
            deploy_gateway(warm_start=str(root))

    def test_warm_start_shard_conflict_raises(self, durable_store):
        _, root = durable_store
        with pytest.raises(ValueError, match="shard"):
            deploy_gateway(warm_start=str(root), num_shards=2)


# --------------------------------------------------------------------- #
# Persisted index payloads
# --------------------------------------------------------------------- #
class TestIndexPayloads:
    def test_persisted_ivfpq_restores_bit_identical(self, durable_store):
        store, root = durable_store
        snap = store.snapshot()
        index = IVFPQIndex(num_subspaces=4, seed=5,
                           int8_table=snap.quantized["int8"]).build(snap.services)
        snap.durable.save_index(index, "ivfpq")
        restored = snap.durable.load_index("ivfpq")
        queries = snap.queries[:16]
        ids_a, scores_a = index.search(queries, 10)
        ids_b, scores_b = restored.search(queries, 10)
        assert np.array_equal(ids_a, ids_b)
        assert np.array_equal(scores_a, scores_b)

    def test_gateway_persist_and_warm_restore_index(self, durable_store):
        store, root = durable_store
        gateway = ServingGateway(store, index="ivfpq",
                                 index_params={"num_subspaces": 4},
                                 cache_capacity=0)
        expected = [gateway.rank(query_id, 8) for query_id in range(6)]
        gateway.persist_index()
        gateway.close()
        warm_store = VersionedEmbeddingStore.restore(str(root))
        warm = ServingGateway(warm_store, index="ivfpq", cache_capacity=0)
        try:
            # the restored payload, not a re-trained index, answered these
            restored = warm._restore_index(warm_store.snapshot())
            assert restored is not None
            assert [warm.rank(query_id, 8) for query_id in range(6)] == expected
        finally:
            warm.close()

    def test_damaged_index_payload_warns_and_rebuilds(self, durable_store):
        store, root = durable_store
        gateway = ServingGateway(store, index="ivfpq",
                                 index_params={"num_subspaces": 4},
                                 cache_capacity=0)
        gateway.persist_index()
        gateway.close()
        sidecar = root / "manifests" / "v0-index-ivfpq.json"
        raw = sidecar.read_bytes()
        sidecar.write_bytes(raw.replace(b'"cell_size"', b'"cell_sizX"', 1))
        warm_store = VersionedEmbeddingStore.restore(str(root))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            warm = ServingGateway(warm_store, index="ivfpq",
                                  index_params={"num_subspaces": 4},
                                  cache_capacity=0)
        try:
            assert any("rebuilding" in str(w.message) for w in caught)
            assert warm.rank(0, 8)
        finally:
            warm.close()

    def test_persist_index_requires_durable_snapshot(self, embeddings):
        queries, services = embeddings
        store = VersionedEmbeddingStore(queries, services)
        gateway = ServingGateway(store, index="ivf", cache_capacity=0)
        try:
            with pytest.raises(ValueError, match="durabl"):
                gateway.persist_index()
        finally:
            gateway.close()
