"""Tests for the GARCIA GNN encoder (Eq. 2) and the intention encoder (Eq. 3)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.data.schema import Intention
from repro.graph.intention_tree import IntentionForest
from repro.models.garcia.encoder import GarciaGNNLayer, GraphEncoder, leaky_relu
from repro.models.garcia.intention_encoder import IntentionEncoder


def _toy_graph(rng, num_nodes=12, dim=6):
    upper = np.triu((rng.random((num_nodes, num_nodes)) < 0.3).astype(float), k=1)
    adjacency = upper + upper.T
    ctr = adjacency * rng.random((num_nodes, num_nodes))
    ctr = np.triu(ctr) + np.triu(ctr, 1).T
    correlation = adjacency * 0.5
    features = Tensor(rng.normal(size=(num_nodes, dim)), requires_grad=False)
    return features, Tensor(adjacency), [Tensor(ctr), Tensor(correlation)]


class TestLeakyRelu:
    def test_matches_definition(self, rng):
        x = Tensor(rng.normal(size=(20,)))
        output = leaky_relu(x, 0.2).numpy()
        expected = np.where(x.numpy() > 0, x.numpy(), 0.2 * x.numpy())
        assert np.allclose(output, expected)


class TestGarciaGNNLayer:
    def test_attention_rows_sum_to_one_over_neighbours(self, rng):
        features, adjacency, edges = _toy_graph(rng)
        layer = GarciaGNNLayer(6, rng=rng)
        attention = layer.attention_weights(features, adjacency, edges).numpy()
        degrees = adjacency.numpy().sum(axis=1)
        row_sums = attention.sum(axis=1)
        connected = degrees > 0
        assert np.allclose(row_sums[connected], 1.0, atol=1e-6)
        assert np.allclose(row_sums[~connected], 0.0, atol=1e-6)

    def test_attention_respects_adjacency_mask(self, rng):
        features, adjacency, edges = _toy_graph(rng)
        layer = GarciaGNNLayer(6, rng=rng)
        attention = layer.attention_weights(features, adjacency, edges).numpy()
        assert np.all(attention[adjacency.numpy() == 0] == 0.0)

    def test_forward_shape_preserved(self, rng):
        features, adjacency, edges = _toy_graph(rng)
        layer = GarciaGNNLayer(6, rng=rng)
        assert layer(features, adjacency, edges).shape == features.shape

    def test_gradients_reach_all_layer_parameters(self, rng):
        features, adjacency, edges = _toy_graph(rng)
        layer = GarciaGNNLayer(6, rng=rng)
        layer(features, adjacency, edges).sum().backward()
        assert all(parameter.grad is not None for parameter in layer.parameters())

    def test_edge_features_influence_output(self, rng):
        features, adjacency, edges = _toy_graph(rng)
        layer = GarciaGNNLayer(6, rng=rng)
        baseline = layer(features, adjacency, edges).numpy()
        boosted_edges = [edges[0] * 5.0, edges[1]]
        modified = layer(features, adjacency, boosted_edges).numpy()
        assert not np.allclose(baseline, modified)


class TestGraphEncoder:
    def test_layer_outputs_count(self, rng):
        features, adjacency, edges = _toy_graph(rng)
        encoder = GraphEncoder(6, num_layers=3, rng=rng)
        outputs = encoder.layer_outputs(features, adjacency, edges)
        assert len(outputs) == 4  # Z^(0) .. Z^(3)
        assert all(output.shape == features.shape for output in outputs)

    def test_readout_is_mean_of_layers(self, rng):
        features, adjacency, edges = _toy_graph(rng)
        encoder = GraphEncoder(6, num_layers=2, rng=rng)
        outputs = encoder.layer_outputs(features, adjacency, edges)
        readout = encoder.readout(outputs).numpy()
        expected = np.mean([output.numpy() for output in outputs], axis=0)
        assert np.allclose(readout, expected)

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            GraphEncoder(6, num_layers=0)

    def test_two_encoders_have_independent_parameters(self, rng):
        head = GraphEncoder(4, num_layers=1, rng=np.random.default_rng(0))
        tail = GraphEncoder(4, num_layers=1, rng=np.random.default_rng(1))
        head_weights = head.parameters()[0].data
        tail_weights = tail.parameters()[0].data
        assert not np.allclose(head_weights, tail_weights)


def _chain_forest():
    intentions = [
        Intention(0, level=1, parent_id=None, children=[1], tree_id=0),
        Intention(1, level=2, parent_id=0, children=[2], tree_id=0),
        Intention(2, level=3, parent_id=1, children=[], tree_id=0),
    ]
    return IntentionForest(intentions)


class TestIntentionEncoder:
    def test_output_shape(self, tiny_forest, rng):
        encoder = IntentionEncoder(tiny_forest, embedding_dim=8, num_levels=3, rng=rng)
        assert encoder().shape == (tiny_forest.num_intentions, 8)

    def test_single_level_returns_raw_embeddings(self, rng):
        forest = _chain_forest()
        encoder = IntentionEncoder(forest, embedding_dim=4, num_levels=1, rng=rng)
        output = encoder().numpy()
        assert np.allclose(output, encoder.embedding.weight.data)

    def test_more_levels_propagate_child_information(self, rng):
        forest = _chain_forest()
        shallow = IntentionEncoder(forest, embedding_dim=4, num_levels=2, rng=np.random.default_rng(0))
        deep = IntentionEncoder(forest, embedding_dim=4, num_levels=4, rng=np.random.default_rng(0))
        assert not np.allclose(shallow().numpy(), deep().numpy())

    def test_leaf_perturbation_reaches_root_only_with_enough_levels(self, rng):
        forest = _chain_forest()
        encoder = IntentionEncoder(forest, embedding_dim=4, num_levels=3, rng=rng)
        baseline_root = encoder().numpy()[0].copy()
        # Perturb the leaf embedding; with 2 aggregation steps the change must
        # propagate through level 2 up to the root.
        encoder.embedding.weight.data[2] += 10.0
        perturbed_root = encoder().numpy()[0]
        assert not np.allclose(baseline_root, perturbed_root)

    def test_gradients_flow_to_embeddings_and_transform(self, tiny_forest, rng):
        encoder = IntentionEncoder(tiny_forest, embedding_dim=8, num_levels=3, rng=rng)
        encoder().sum().backward()
        assert encoder.embedding.weight.grad is not None
        assert encoder.transform.weight.grad is not None

    def test_activation_options_and_validation(self, tiny_forest, rng):
        for activation in ("tanh", "sigmoid", "relu"):
            IntentionEncoder(tiny_forest, 4, num_levels=2, activation=activation, rng=rng)()
        with pytest.raises(ValueError):
            IntentionEncoder(tiny_forest, 4, activation="gelu", rng=rng)
        with pytest.raises(ValueError):
            IntentionEncoder(tiny_forest, 4, num_levels=0, rng=rng)
