"""Tests for the per-slice evaluator, the reporting helpers and the A/B simulator."""

import numpy as np
import pytest

from repro.eval.ab_test import ABTestConfig, OnlineABTest, date_label
from repro.eval.evaluator import Evaluator
from repro.eval.reporting import format_float_table, format_table


class OracleModel:
    """Scores pairs with the ground-truth click probability (upper bound)."""

    name = "oracle"

    def __init__(self, oracle):
        self._oracle = oracle

    def predict(self, query_ids, service_ids):
        return self._oracle.click_probability(query_ids, service_ids)


class RandomModel:
    name = "random"

    def __init__(self, seed=0):
        self._rng = np.random.default_rng(seed)

    def predict(self, query_ids, service_ids):
        return self._rng.random(len(query_ids))


class OracleRanker:
    """Ranks services by ground-truth click probability for a query."""

    def __init__(self, oracle, num_services):
        self._oracle = oracle
        self._num_services = num_services

    def rank(self, query_id, k):
        scores = self._oracle.click_probability(
            np.full(self._num_services, query_id), np.arange(self._num_services)
        )
        return np.argsort(-scores)[:k]


class WorstRanker(OracleRanker):
    def rank(self, query_id, k):
        scores = self._oracle.click_probability(
            np.full(self._num_services, query_id), np.arange(self._num_services)
        )
        return np.argsort(scores)[:k]


class TestEvaluator:
    def test_oracle_beats_random(self, tiny_scenario):
        evaluator = Evaluator()
        oracle_report = evaluator.evaluate(
            OracleModel(tiny_scenario.oracle), tiny_scenario.splits.test, tiny_scenario.head_tail
        )
        random_report = evaluator.evaluate(
            RandomModel(), tiny_scenario.splits.test, tiny_scenario.head_tail
        )
        assert oracle_report.overall.auc > random_report.overall.auc
        assert oracle_report.overall.auc > 0.7
        assert abs(random_report.overall.auc - 0.5) < 0.1

    def test_report_has_all_slices(self, tiny_scenario):
        report = Evaluator().evaluate(
            OracleModel(tiny_scenario.oracle), tiny_scenario.splits.test, tiny_scenario.head_tail
        )
        assert set(report.slices) == {"head", "tail", "overall"}
        assert report.head.num_interactions + report.tail.num_interactions == report.overall.num_interactions
        row = report.as_row()
        assert {"model", "head_auc", "tail_auc", "overall_auc"} <= set(row)

    def test_model_name_defaults_to_attribute(self, tiny_scenario):
        report = Evaluator().evaluate(
            OracleModel(tiny_scenario.oracle), tiny_scenario.splits.test, tiny_scenario.head_tail
        )
        assert report.model_name == "oracle"

    def test_empty_interactions_rejected(self, tiny_scenario):
        with pytest.raises(ValueError):
            Evaluator().evaluate(RandomModel(), [], tiny_scenario.head_tail)

    def test_batched_scoring_matches_single_shot(self, tiny_scenario):
        model = OracleModel(tiny_scenario.oracle)
        small_batches = Evaluator(batch_size=7)
        one_shot = Evaluator(batch_size=10_000)
        a = small_batches.evaluate(model, tiny_scenario.splits.test, tiny_scenario.head_tail)
        b = one_shot.evaluate(model, tiny_scenario.splits.test, tiny_scenario.head_tail)
        assert a.overall.auc == pytest.approx(b.overall.auc)

    def test_invalid_ndcg_k(self):
        with pytest.raises(ValueError):
            Evaluator(ndcg_k=0)


class TestReporting:
    def test_format_table_alignment_and_headers(self):
        rows = [{"model": "GARCIA", "auc": 0.93}, {"model": "LightGCN", "auc": 0.91}]
        text = format_table(rows, title="Table")
        assert "Table" in text and "model" in text and "GARCIA" in text
        assert len(text.splitlines()) == 5

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="T")

    def test_format_float_table_rounds(self):
        text = format_float_table([{"value": 0.123456789}], precision=3)
        assert "0.123" in text and "0.1235" not in text


class TestABTest:
    def test_better_ranker_wins(self, tiny_scenario):
        config = ABTestConfig(num_days=3, sessions_per_day=300, top_k=3, seed=1)
        test = OnlineABTest(tiny_scenario.dataset, tiny_scenario.oracle, config=config)
        good = OracleRanker(tiny_scenario.oracle, tiny_scenario.dataset.num_services)
        bad = WorstRanker(tiny_scenario.oracle, tiny_scenario.dataset.num_services)
        outcome = test.run(bad, good)
        assert outcome.absolute_ctr_gain() > 0
        assert all(improvement > 0 for improvement in outcome.ctr_improvement())
        assert len(outcome.days) == 3
        assert outcome.days[0] == "2022/10/01"

    def test_identical_rankers_give_small_difference(self, tiny_scenario):
        config = ABTestConfig(num_days=2, sessions_per_day=400, top_k=3, seed=2)
        test = OnlineABTest(tiny_scenario.dataset, tiny_scenario.oracle, config=config)
        ranker = OracleRanker(tiny_scenario.oracle, tiny_scenario.dataset.num_services)
        outcome = test.run(ranker, ranker)
        assert abs(outcome.absolute_ctr_gain()) < 5.0

    def test_as_rows_structure(self, tiny_scenario):
        config = ABTestConfig(num_days=2, sessions_per_day=100, top_k=2, seed=0)
        test = OnlineABTest(tiny_scenario.dataset, tiny_scenario.oracle, config=config)
        ranker = OracleRanker(tiny_scenario.oracle, tiny_scenario.dataset.num_services)
        rows = test.run(ranker, ranker).as_rows()
        assert len(rows) == 2
        assert {"day", "ctr_improvement_pct", "valid_ctr_improvement_pct"} <= set(rows[0])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ABTestConfig(num_days=0)
        with pytest.raises(ValueError):
            ABTestConfig(top_k=10, position_bias=(1.0, 0.5))

    def test_date_labels_cross_month_and_year_boundaries(self):
        assert date_label("2022/10/28", 0) == "2022/10/28"
        assert date_label("2022/10/28", 4) == "2022/11/01"
        assert date_label("2022/12/30", 3) == "2023/01/02"

    def test_metrics_are_counted(self, tiny_scenario):
        config = ABTestConfig(num_days=1, sessions_per_day=200, top_k=3, seed=3)
        test = OnlineABTest(tiny_scenario.dataset, tiny_scenario.oracle, config=config)
        ranker = OracleRanker(tiny_scenario.oracle, tiny_scenario.dataset.num_services)
        outcome = test.run(ranker, ranker)
        bucket = outcome.baseline[0]
        assert bucket.impressions > 0
        assert 0 <= bucket.clicks <= bucket.impressions
        assert 0 <= bucket.conversions <= bucket.clicks
