"""Tests for the experiment drivers (one per table / figure of the paper).

These run the drivers at the smallest possible scale — the goal is to verify
the plumbing (rows, columns, variants, series) rather than the scientific
shapes, which the benchmark harness is responsible for.
"""

import pytest

from repro.experiments import (
    fig10_online_ab,
    fig11_case_study,
    fig3_adaptive_encoding,
    fig4_mgcl_ablation,
    fig5_alpha,
    fig7_tree_depth,
    table1_datasets,
    table2_graphs,
    table3_auc,
    table4_tail_ranking,
)
from repro.experiments.common import (
    ALL_MODEL_NAMES,
    ExperimentSettings,
    all_dataset_names,
    build_model,
    dataset_config,
    scenario_for,
    train_and_evaluate,
)


FAST = ExperimentSettings(
    scale="tiny",
    embedding_dim=8,
    pretrain_epochs=1,
    finetune_epochs=1,
    learning_rate=5e-3,
    seed=0,
)


@pytest.fixture(scope="module")
def sep_a_scenario():
    return scenario_for("Sep. A", FAST)


class TestCommonHelpers:
    def test_all_dataset_names(self):
        names = all_dataset_names()
        assert len(names) == 6
        assert "Sep. A" in names and "Software" in names
        assert len(all_dataset_names(include_amazon=False)) == 3

    def test_dataset_config_resolution(self):
        assert dataset_config("Sep. B", "tiny").name == "Sep. B"
        assert dataset_config("Music", "tiny").name == "Music"
        with pytest.raises(ValueError):
            dataset_config("Unknown", "tiny")

    def test_build_model_knows_every_table3_name(self, sep_a_scenario):
        for name in ALL_MODEL_NAMES:
            model = build_model(name, sep_a_scenario, FAST)
            assert model.graph is sep_a_scenario.graph
        with pytest.raises(ValueError):
            build_model("DeepFM", sep_a_scenario, FAST)

    def test_garcia_config_uses_experiment_dimensions(self):
        config = FAST.garcia_config(alpha=0.3)
        assert config.embedding_dim == FAST.embedding_dim
        assert config.alpha == pytest.approx(0.3)

    def test_train_and_evaluate_returns_report(self, sep_a_scenario):
        _, report = train_and_evaluate("LightGCN", sep_a_scenario, FAST)
        assert 0.0 <= report.overall.auc <= 1.0


class TestTableDrivers:
    def test_table1_rows(self):
        result = table1_datasets.run(FAST, datasets=["Sep. A", "Software"])
        assert len(result.rows) == 2
        assert {"dataset", "queries_head_pct", "pv_head_pct"} <= set(result.rows[0])
        assert result.rows[0]["pv_head_pct"] > result.rows[0]["queries_head_pct"]

    def test_table2_rows(self):
        result = table2_graphs.run(FAST, datasets=["Sep. A"])
        row = result.rows[0]
        assert row["head_edges"] >= 0 and row["tail_edges"] > 0
        assert row["intention_nodes"] > 0

    def test_table3_structure_with_two_models(self):
        result = table3_auc.run(FAST, datasets=["Sep. A"], models=["LightGCN", "GARCIA"])
        model_rows = [row for row in result.rows if row["model"] in ("LightGCN", "GARCIA")]
        assert len(model_rows) == 2
        assert all(0.0 <= row["overall_auc"] <= 1.0 for row in model_rows)
        improvement_rows = [row for row in result.rows if "vs best" in str(row["model"])]
        assert len(improvement_rows) == 1

    def test_table4_reports_lightgcn_reference(self):
        result = table4_tail_ranking.run(FAST, datasets=["Sep. A"], models=["LightGCN", "Wide&Deep"])
        reference_rows = [row for row in result.rows if row["model"] == "LightGCN"]
        assert reference_rows[0]["gauc_vs_lightgcn_pct"] == pytest.approx(0.0)
        assert {"tail_gauc", "tail_ndcg10"} <= set(result.rows[0])


class TestFigureDrivers:
    def test_fig3_compares_share_and_adaptive(self):
        result = fig3_adaptive_encoding.run(FAST, datasets=["Sep. A"])
        variants = {row["variant"] for row in result.rows}
        assert variants == {"GARCIA", "GARCIA-Share"}

    def test_fig4_contains_all_variants(self):
        result = fig4_mgcl_ablation.run(FAST, datasets=["Sep. A"])
        variants = [row["variant"] for row in result.rows]
        assert variants == [
            "GARCIA w.o. ALL", "GARCIA w.o. IG&SE", "GARCIA w.o. IG", "GARCIA w.o. SE", "GARCIA",
        ]
        assert all("head_auc" in row for row in result.rows)

    def test_fig5_sweep_rows_and_series(self):
        result = fig5_alpha.run(FAST, values=(0.0, 0.1))
        assert [row["alpha"] for row in result.rows] == [0.0, 0.1]
        assert "alpha=0.1/tail_auc" in result.series
        assert len(result.series["alpha=0.1/tail_auc"]) == FAST.finetune_epochs

    def test_fig7_includes_reference_and_levels(self):
        result = fig7_tree_depth.run(FAST, levels=(1, 2))
        h_values = [row["H"] for row in result.rows]
        assert h_values[0] == "none"
        assert set(h_values[1:]) == {1, 2}

    def test_fig10_ab_test_rows_and_notes(self):
        result = fig10_online_ab.run(
            FAST, baseline_model="LightGCN", num_days=2, sessions_per_day=100, top_k=3
        )
        assert len(result.rows) == 2
        assert "ctr_improvement_pct" in result.rows[0]
        assert "absolute CTR gain" in result.notes
        assert len(result.series["ctr_improvement_pct"]) == 2

    def test_fig10_gateway_backend_reports_ctr_and_cost(self):
        result = fig10_online_ab.run(
            FAST, baseline_model="LightGCN", num_days=2, sessions_per_day=120,
            top_k=3, backend="gateway", treatment_fraction=0.3,
        )
        assert len(result.rows) == 2
        assert "ctr_improvement_pct" in result.rows[0]
        assert "control_ctr" in result.rows[0] and "treatment_ctr" in result.rows[0]
        assert result.rows[0]["control_impressions"] > 0
        assert result.rows[0]["treatment_impressions"] > 0
        # The joint report carries serving cost from the same run.
        assert "QPS" in result.notes and "p99" in result.notes
        assert len(result.series["control_p99_ms"]) == 1
        assert len(result.series["ctr_improvement_pct"]) == 2

    def test_fig10_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            fig10_online_ab.run(FAST, backend="quantum")

    def test_fig11_case_study_lists(self):
        result = fig11_case_study.run(
            FAST, baseline_model="LightGCN", num_case_queries=1, top_k=3
        )
        systems = {row["system"] for row in result.rows}
        assert systems == {"BASELINE", "GARCIA"}
        assert len(result.rows) == 6  # 1 query × 2 systems × top-3
        assert all(row["rank"] in (1, 2, 3) for row in result.rows)
        assert any("mean_quality" in key for key in result.series)
