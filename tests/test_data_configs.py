"""Tests for the industrial (Sep. A/B/C) and Amazon dataset configurations."""

import pytest

from repro.data.amazon import AMAZON_DATASETS, amazon_config
from repro.data.industrial import INDUSTRIAL_DATASETS, industrial_config
from repro.data.synthetic import generate_dataset


class TestIndustrialConfigs:
    def test_three_windows_exist(self):
        assert INDUSTRIAL_DATASETS == ("Sep. A", "Sep. B", "Sep. C")

    def test_unknown_name_or_scale_rejected(self):
        with pytest.raises(ValueError):
            industrial_config("Sep. D")
        with pytest.raises(ValueError):
            industrial_config("Sep. A", scale="huge")

    def test_windows_have_different_seeds(self):
        seeds = {industrial_config(name, scale="tiny").seed for name in INDUSTRIAL_DATASETS}
        assert len(seeds) == 3

    def test_scales_are_ordered_by_size(self):
        tiny = industrial_config("Sep. A", scale="tiny")
        small = industrial_config("Sep. A", scale="small")
        medium = industrial_config("Sep. A", scale="medium")
        assert tiny.num_queries < small.num_queries < medium.num_queries
        assert tiny.num_interactions < small.num_interactions < medium.num_interactions

    def test_industrial_uses_deep_intention_trees(self):
        config = industrial_config("Sep. B", scale="tiny")
        assert config.intention_depth == 5
        assert config.num_days == 10  # each window covers ten days

    def test_generated_window_is_skewed_like_the_paper(self):
        dataset = generate_dataset(industrial_config("Sep. A", scale="tiny"))
        stats = dataset.statistics()
        # The paper reports >90 % of PV on ~1 % of queries; at tiny scale we
        # accept a looser but still strongly skewed shape.
        assert stats.head_pv_fraction > 0.5


class TestAmazonConfigs:
    def test_three_domains_exist(self):
        assert AMAZON_DATASETS == ("Software", "Video game", "Music")

    def test_unknown_domain_or_scale_rejected(self):
        with pytest.raises(ValueError):
            amazon_config("Books")
        with pytest.raises(ValueError):
            amazon_config("Software", scale="giant")

    def test_relative_sizes_follow_the_paper(self):
        software = amazon_config("Software", scale="small")
        video = amazon_config("Video game", scale="small")
        music = amazon_config("Music", scale="small")
        # Video game > Music > Software in users/items/interactions.
        assert video.num_interactions > music.num_interactions > software.num_interactions
        assert video.num_services > music.num_services > software.num_services

    def test_software_has_flattest_head_share(self):
        software = amazon_config("Software", scale="small")
        video = amazon_config("Video game", scale="small")
        assert software.head_fraction > video.head_fraction
        assert software.zipf_exponent < video.zipf_exponent

    def test_scaling_factor_changes_sizes(self):
        tiny = amazon_config("Music", scale="tiny")
        medium = amazon_config("Music", scale="medium")
        assert tiny.num_queries < medium.num_queries

    def test_amazon_dataset_generates_and_validates(self):
        dataset = generate_dataset(amazon_config("Software", scale="tiny"))
        dataset.validate()
        assert dataset.name == "Software"
