"""Shared fixtures for the test-suite.

A single very small scenario is prepared once per session and reused by the
graph / model / serving / experiment tests so the suite stays fast while still
exercising the full data → graph → model pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticConfig
from repro.pipeline import Scenario, prepare_scenario


TINY_CONFIG = SyntheticConfig(
    name="tiny-test",
    num_queries=80,
    num_services=30,
    num_interactions=2_000,
    total_page_views=20_000,
    num_days=10,
    num_intention_trees=3,
    intention_depth=4,
    intention_branching=2,
    head_fraction=0.05,
    seed=7,
)


@pytest.fixture(scope="session")
def tiny_scenario() -> Scenario:
    """A fully prepared small scenario shared across the session."""
    return prepare_scenario(TINY_CONFIG)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_scenario):
    return tiny_scenario.dataset


@pytest.fixture(scope="session")
def tiny_graph(tiny_scenario):
    return tiny_scenario.graph


@pytest.fixture(scope="session")
def tiny_forest(tiny_scenario):
    return tiny_scenario.forest


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)
