"""Tests for the five baseline models (Wide&Deep, LightGCN, KGAT, SGL, SimGCL)."""

import numpy as np
import pytest

from repro.data.loaders import interactions_to_arrays
from repro.models import KGAT, SGL, LightGCN, SimGCL, WideAndDeep
from repro.models.baselines.lightgcn import normalized_adjacency
from repro.nn import Adam

ALL_BASELINES = [WideAndDeep, LightGCN, KGAT, SGL, SimGCL]


@pytest.fixture(scope="module")
def batch(tiny_scenario):
    return interactions_to_arrays(tiny_scenario.splits.train[:96])


def _build(model_class, graph):
    return model_class(graph, embedding_dim=8, seed=0)


class TestNormalizedAdjacency:
    def test_symmetric_and_isolated_node_safe(self, rng):
        upper = np.triu((rng.random((10, 10)) < 0.3).astype(float), k=1)
        adjacency = upper + upper.T
        adjacency[3, :] = 0.0
        adjacency[:, 3] = 0.0
        normalized = normalized_adjacency(adjacency)
        assert np.allclose(normalized, normalized.T)
        assert np.all(np.isfinite(normalized))
        assert np.all(normalized[3] == 0.0)

    def test_row_sums_bounded_by_one(self, rng):
        upper = np.triu((rng.random((15, 15)) < 0.4).astype(float), k=1)
        adjacency = upper + upper.T
        normalized = normalized_adjacency(adjacency)
        assert normalized.max() <= 1.0 + 1e-9


@pytest.mark.parametrize("model_class", ALL_BASELINES)
class TestBaselineContract:
    def test_training_loss_is_finite_and_differentiable(self, model_class, tiny_graph, batch):
        model = _build(model_class, tiny_graph)
        loss = model.training_loss(batch)
        assert np.isfinite(loss.item()) and loss.item() > 0
        loss.backward()
        assert any(parameter.grad is not None for parameter in model.parameters())

    def test_predictions_are_probabilities(self, model_class, tiny_graph, batch):
        model = _build(model_class, tiny_graph)
        predictions = model.predict(batch.query_ids, batch.service_ids)
        assert predictions.shape == (len(batch),)
        assert np.all((predictions >= 0) & (predictions <= 1))

    def test_embeddings_shapes(self, model_class, tiny_graph):
        model = _build(model_class, tiny_graph)
        assert model.query_embeddings().shape[0] == tiny_graph.num_queries
        assert model.service_embeddings().shape[0] == tiny_graph.num_services

    def test_one_optimisation_step_reduces_loss(self, model_class, tiny_graph, batch):
        model = _build(model_class, tiny_graph)
        optimizer = Adam(model.parameters(), lr=0.02)
        first = model.training_loss(batch)
        first_value = first.item()
        first.backward()
        optimizer.step()
        model.invalidate_cache()
        for _ in range(4):
            optimizer.zero_grad()
            loss = model.training_loss(batch)
            loss.backward()
            optimizer.step()
            model.invalidate_cache()
        assert model.training_loss(batch).item() < first_value

    def test_model_name_is_set(self, model_class, tiny_graph):
        model = _build(model_class, tiny_graph)
        assert model.name and model.name != "model"


class TestModelSpecificBehaviour:
    def test_wide_features_are_attribute_match_indicators(self, tiny_scenario, batch):
        model = _build(WideAndDeep, tiny_scenario.graph)
        features = model._wide_features(batch.query_ids, batch.service_ids)
        assert features.shape == (len(batch), 3)
        assert np.all((features == 0) | (features == 1))

    def test_lightgcn_propagation_has_no_transform_parameters(self, tiny_graph):
        model = _build(LightGCN, tiny_graph)
        names = [name for name, _ in model.named_parameters()]
        # Only embeddings and the click head — no per-layer weight matrices.
        assert all("gnn_layer" not in name for name in names)

    def test_lightgcn_layer_outputs_count(self, tiny_graph):
        model = LightGCN(tiny_graph, embedding_dim=8, num_layers=3, seed=0)
        assert len(model.layer_outputs()) == 4

    def test_kgat_attention_rows_are_masked(self, tiny_graph, rng):
        model = _build(KGAT, tiny_graph)
        representations = model.feature_encoder()
        attention = model._attention(representations, 0).numpy()
        assert np.all(attention[tiny_graph.adjacency == 0] == 0.0)

    def test_sgl_ssl_weight_zero_equals_lightgcn_loss(self, tiny_graph, batch):
        sgl = SGL(tiny_graph, embedding_dim=8, ssl_weight=0.0, seed=0)
        lightgcn = LightGCN(tiny_graph, embedding_dim=8, seed=0)
        assert sgl.training_loss(batch).item() == pytest.approx(
            lightgcn.training_loss(batch).item()
        )

    def test_sgl_ssl_term_increases_loss(self, tiny_graph, batch):
        without = SGL(tiny_graph, embedding_dim=8, ssl_weight=0.0, seed=0)
        with_ssl = SGL(tiny_graph, embedding_dim=8, ssl_weight=0.5, seed=0)
        assert with_ssl.training_loss(batch).item() > without.training_loss(batch).item()

    def test_simgcl_noise_views_differ(self, tiny_graph):
        model = SimGCL(tiny_graph, embedding_dim=8, noise_magnitude=0.2, seed=0)
        view_a = model._noisy_readout().numpy()
        view_b = model._noisy_readout().numpy()
        assert not np.allclose(view_a, view_b)

    def test_invalid_hyperparameters_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            SGL(tiny_graph, edge_dropout=1.0)
        with pytest.raises(ValueError):
            SGL(tiny_graph, ssl_weight=-0.1)
        with pytest.raises(ValueError):
            SimGCL(tiny_graph, noise_magnitude=-0.5)
        with pytest.raises(ValueError):
            LightGCN(tiny_graph, num_layers=0)
        with pytest.raises(ValueError):
            KGAT(tiny_graph, num_layers=0)
