"""Tests for end-to-end request tracing, the flight recorder and the
health surface (``repro.serving.obs``).

The acceptance path: a sharded process-pool request traced end to end
produces one span tree — admission → queue → scatter (one re-anchored
``shard_worker`` child per shard, pid-tagged from the worker process) →
merge → reply — with monotonic, root-bounded timings.  Around it, the
unit-level contracts: deterministic ids, batch-span grafting, the flight
recorder's tail-sampling keep rules, ``explain()`` and ``health()``.
"""

import asyncio
import os

import numpy as np
import pytest

from repro.serving.gateway import (
    OverloadError,
    ServingGateway,
    VersionedEmbeddingStore,
    clustered_embeddings,
)
from repro.serving.obs.flight import FlightRecorder
from repro.serving.obs.tracing import (
    STATUS_OK,
    STATUS_SHED,
    BatchSpans,
    Tracer,
    worker_span,
)
from repro.serving.sharded import ShardedGateway

NUM_QUERIES, NUM_SERVICES, DIM, NUM_SHARDS = 120, 800, 24, 4


@pytest.fixture(scope="module")
def clustered():
    return clustered_embeddings(
        NUM_QUERIES, NUM_SERVICES, DIM, num_clusters=8, spread=0.2, seed=9
    )


def traced_sharded_gateway(clustered, workers):
    queries, services = clustered
    store = VersionedEmbeddingStore(
        queries, services, num_shards=NUM_SHARDS
    )
    return ShardedGateway(
        store,
        index="exact",
        workers=workers,
        top_k=5,
        max_batch_size=16,
        cache_capacity=0,
        tracing=True,
        trace_sample_every=1,
        slow_trace_ms=0.0,
    )


def drive_async(gateway, query_ids):
    async def run():
        await asyncio.gather(
            *(gateway.search_async(int(q)) for q in query_ids)
        )
        await gateway.stop_async()

    asyncio.run(run())


def assert_end_to_end_trace(trace, expect_foreign_pid):
    """The acceptance criterion: one coherent span tree per request."""
    root = trace.root
    assert root.name == "request"
    assert trace.status == STATUS_OK

    admission = trace.find("admission")
    queue = trace.find("queue")
    scatter = trace.find("scatter")
    merge = trace.find("merge")
    reply = trace.find("reply")
    for span in (admission, queue, scatter, merge, reply):
        assert span is not None, trace.format()

    workers = trace.find_all("shard_worker")
    assert len(workers) == NUM_SHARDS
    assert {w.attrs["shard"] for w in workers} == set(range(NUM_SHARDS))
    assert all(w.parent_id == scatter.span_id for w in workers)
    if expect_foreign_pid:
        assert all(w.attrs["pid"] != os.getpid() for w in workers)
    else:
        assert all(w.attrs["pid"] == os.getpid() for w in workers)

    eps = 1e-9
    # Children never escape their parent's window: the re-anchored worker
    # spans sit inside the observed scatter window, every stage span sits
    # inside the request root.
    for w in workers:
        assert scatter.start_s - eps <= w.start_s
        assert w.end_s <= scatter.end_s + eps
        assert w.duration_s >= 0.0
    for span in trace.spans()[1:]:
        assert root.start_s - eps <= span.start_s
        assert span.end_s <= root.end_s + eps

    # Monotonic stage ordering along the request's lifecycle.
    assert admission.start_s == pytest.approx(root.start_s)
    assert admission.end_s <= queue.start_s + eps
    assert queue.end_s <= scatter.start_s + eps
    assert scatter.end_s <= merge.start_s + eps
    assert merge.end_s <= reply.start_s + eps
    assert reply.end_s == pytest.approx(root.end_s)


class TestEndToEndTracing:
    def test_sharded_process_pool_trace(self, clustered):
        gateway = traced_sharded_gateway(clustered, workers="process")
        try:
            drive_async(gateway, range(32))
            traces = [
                t
                for t in gateway.flight_recorder.dump()
                if t.status == STATUS_OK
            ]
            assert len(traces) == 32  # sample_every=1 + slow_s=0 keep all
            for trace in traces:
                assert_end_to_end_trace(trace, expect_foreign_pid=True)
        finally:
            gateway.close()

    def test_sharded_thread_pool_trace(self, clustered):
        gateway = traced_sharded_gateway(clustered, workers="thread")
        try:
            drive_async(gateway, range(16))
            trace = gateway.flight_recorder.slowest()
            assert trace is not None
            assert_end_to_end_trace(trace, expect_foreign_pid=False)
        finally:
            gateway.close()

    def test_trace_carries_tag_and_explain_renders(self, clustered):
        gateway = traced_sharded_gateway(clustered, workers="serial")
        try:

            async def run():
                await gateway.search_async(3, tag="treatment")
                await gateway.stop_async()

            asyncio.run(run())
            trace = gateway.flight_recorder.dump()[-1]
            assert trace.tag == "treatment"
            rendered = gateway.explain(trace)
            assert "tag='treatment'" in rendered
            for name in ("request", "admission", "queue", "scatter",
                         "shard_worker", "merge", "reply"):
                assert f"- {name} " in rendered or rendered.startswith(
                    "trace"
                ) and name == "request"
        finally:
            gateway.close()

    def test_shed_requests_are_traced_and_always_kept(self, clustered):
        queries, services = clustered
        store = VersionedEmbeddingStore(queries, services, num_shards=1)
        # sample_every / slow_s are tuned so only not-ok traces qualify:
        # what the recorder keeps, admission control shed.
        gateway = ServingGateway(
            store,
            index="exact",
            top_k=5,
            max_batch_size=4,
            cache_capacity=0,
            max_queue=2,
            overload="reject",
            tracing=True,
            trace_sample_every=1_000_000,
            slow_trace_ms=1e9,
        )
        try:

            async def flood():
                results = await asyncio.gather(
                    *(gateway.search_async(int(q) % NUM_QUERIES)
                      for q in range(64)),
                    return_exceptions=True,
                )
                await gateway.stop_async()
                return results

            results = asyncio.run(flood())
            rejected = [
                r for r in results if isinstance(r, OverloadError)
            ]
            assert rejected, "the flood should overflow max_queue=2"
            kept = gateway.flight_recorder.dump()
            assert kept and all(t.status == STATUS_SHED for t in kept)
            assert gateway.flight_recorder.stats()["kept_not_ok"] == len(
                kept
            )
        finally:
            gateway.close()

    def test_health_snapshot_from_live_gateway(self, clustered):
        gateway = traced_sharded_gateway(clustered, workers="serial")
        try:
            drive_async(gateway, range(8))
            health = gateway.health()
            as_dict = health.as_dict()
            assert as_dict["requests"] == 8.0
            assert as_dict["shed_rate"] == 0.0
            assert health.p99_ms >= health.p50_ms >= 0.0
            assert not health.overloaded(shed_budget=0.5)
            assert health.overloaded(p99_budget_ms=-1.0)
        finally:
            gateway.close()


class TestTracerAndSpans:
    def test_ids_are_deterministic_and_seeded(self):
        def ids(seed):
            tracer = Tracer(clock=lambda: 0.0, seed=seed)
            return [
                tracer.start_request(i).trace_id for i in range(10)
            ] + [tracer.batch_context()]

        assert ids(7) == ids(7)
        assert ids(7) != ids(8)
        assert len(set(ids(7))) == 11  # no collisions in the stream

    def test_disabled_tracer_mints_nothing(self):
        tracer = Tracer(clock=lambda: 0.0, enabled=False)
        assert tracer.start_request(1) is None
        assert tracer.traces_started == 0

    def test_finish_is_idempotent_and_records_once(self):
        recorder = FlightRecorder(capacity=4, sample_every=1, slow_s=None)
        tracer = Tracer(clock=lambda: 0.0, recorder=recorder)
        trace = tracer.start_request(1)
        trace.finish(STATUS_OK, end_s=1.0)
        trace.finish(STATUS_SHED, end_s=9.0)
        trace.finish_ok(9.0)
        assert trace.status == STATUS_OK
        assert trace.duration_s == 1.0
        assert tracer.traces_finished == 1
        assert len(recorder) == 1

    def test_batch_spans_graft_by_reference_with_per_trace_ids(self):
        tracer = Tracer(clock=lambda: 0.0)
        first = tracer.start_request(1, start_s=0.0)
        second = tracer.start_request(2, start_s=0.0)
        spans = BatchSpans(lambda: 0.0, tracer.batch_context())
        plan = spans.add("plan", 0.0, 1.0, batch=2)
        spans.add("score", 1.0, 2.0, parent=plan, k=5)
        spans.graft_into(first)
        spans.graft_into(second)
        first.finish_ok(3.0)
        second.finish_ok(3.0)

        for trace in (first, second):
            plan_span = trace.find("plan")
            score_span = trace.find("score")
            assert plan_span.attrs == {"batch": 2}
            assert plan_span.parent_id == trace.root.span_id
            assert score_span.parent_id == plan_span.span_id
        # Shared events, per-trace span identity.
        assert first.trace_id != second.trace_id
        assert first.find("plan").span_id != second.find("plan").span_id

    def test_worker_span_reports_pid_and_context(self):
        ctx = (12345, 67890)
        span = worker_span(ctx, shard=2, start_s=1.0, end_s=1.5, queries=8)
        assert span["name"] == "shard_worker"
        assert span["parent_id"] == 67890
        assert span["shard"] == 2
        assert span["attrs"]["pid"] == os.getpid()
        assert span["attrs"]["queries"] == 8

    def test_format_orders_siblings_by_start_time(self):
        tracer = Tracer(clock=lambda: 0.0)
        trace = tracer.start_request("q", start_s=0.0)
        trace.add_span("late", 2.0, 3.0)
        trace.admission_end_s = 0.5
        trace.queue_depth = 1
        trace.finish_ok(3.0)
        rendered = trace.format()
        lines = [line.strip() for line in rendered.splitlines()]
        # admission (starts at 0.0) must print before "late" (starts 2.0)
        # even though it was synthesised after the direct record.
        assert lines.index("- admission 500.000ms (queue_depth=1)") < (
            lines.index("- late 1000.000ms")
        )


class TestFlightRecorder:
    def _trace(self, tracer, status=STATUS_OK, duration=0.0):
        trace = tracer.start_request(0, start_s=0.0)
        trace.finish(status, end_s=duration)
        return trace

    def test_keep_rules(self):
        recorder = FlightRecorder(capacity=64, sample_every=4, slow_s=1.0)
        tracer = Tracer(clock=lambda: 0.0, recorder=recorder)
        for _ in range(8):
            self._trace(tracer)  # ordinary: kept 1-in-4
        self._trace(tracer, status=STATUS_SHED)  # always kept
        self._trace(tracer, duration=2.0)  # slow: always kept
        stats = recorder.stats()
        assert stats["kept_sampled"] == 2.0  # seen counters 0 and 4
        assert stats["kept_not_ok"] == 1.0
        assert stats["kept_slow"] == 1.0
        assert stats["seen"] == 10.0
        assert len(recorder) == 4

    def test_ring_is_bounded_and_drops_oldest(self):
        recorder = FlightRecorder(capacity=8, sample_every=1, slow_s=None)
        tracer = Tracer(clock=lambda: 0.0, recorder=recorder)
        traces = [self._trace(tracer, duration=i) for i in range(50)]
        assert len(recorder) == 8
        assert recorder.dump() == traces[-8:]
        assert recorder.slowest() is traces[-1]

    def test_find_and_explain_fallbacks(self):
        recorder = FlightRecorder(capacity=8, sample_every=1, slow_s=None)
        tracer = Tracer(clock=lambda: 0.0, recorder=recorder)
        trace = self._trace(tracer)
        assert recorder.find(trace.trace_id) is trace
        assert recorder.find(1234) is None
        assert "not in the flight recorder" in recorder.explain(1234)
        assert "no trace attached" in recorder.explain(object())
        assert recorder.explain(trace).startswith("trace ")

    def test_clear_resets_all_state(self):
        recorder = FlightRecorder(capacity=8, sample_every=1, slow_s=None)
        tracer = Tracer(clock=lambda: 0.0, recorder=recorder)
        self._trace(tracer)
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.seen == 0
        assert recorder.stats()["kept_sampled"] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(sample_every=0)


class TestTracedGatewayStaysExact:
    def test_tracing_does_not_change_results(self, clustered):
        queries, services = clustered
        plain = ShardedGateway(
            VersionedEmbeddingStore(
                queries, services, num_shards=NUM_SHARDS
            ),
            index="exact",
            workers="serial",
            top_k=5,
            cache_capacity=0,
        )
        traced = traced_sharded_gateway(clustered, workers="serial")
        try:
            expected = [plain.search(i, 5) for i in range(12)]
            drive = []

            async def run():
                for i in range(12):
                    drive.append(await traced.search_async(i))
                await traced.stop_async()

            asyncio.run(run())
            for (ids_a, scores_a), (ids_b, scores_b) in zip(
                expected, drive
            ):
                np.testing.assert_array_equal(ids_a, ids_b)
                np.testing.assert_allclose(scores_a, scores_b)
        finally:
            plain.close()
            traced.close()
